//===- Desugar.cpp - Dahlia to Filament lowering ----------------*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "lower/Desugar.h"

#include <cassert>
#include <cmath>
#include <optional>
#include <sstream>

using namespace dahlia;
namespace fil = dahlia::filament;

//===----------------------------------------------------------------------===//
// LoweredMem / LoweredProgram helpers
//===----------------------------------------------------------------------===//

std::pair<std::string, int64_t>
dahlia::LoweredMem::locate(const std::vector<int64_t> &Indices) const {
  assert(Indices.size() == DimSizes.size() && "wrong arity");
  int64_t Bank = 0, Off = 0;
  for (size_t D = 0; D != Indices.size(); ++D) {
    int64_t B = DimBanks[D];
    int64_t BankLen = DimSizes[D] / B;
    Bank = Bank * B + Indices[D] % B;
    Off = Off * BankLen + Indices[D] / B;
  }
  return {BankNames[static_cast<size_t>(Bank)], Off};
}

fil::Store dahlia::LoweredProgram::makeStore(
    int64_t (*Fill)(const std::string &, int64_t)) const {
  fil::Store S;
  for (const auto &[Name, Size] : MemSigs) {
    std::vector<fil::Value> V;
    V.reserve(static_cast<size_t>(Size));
    for (int64_t I = 0; I != Size; ++I)
      V.push_back(fil::Value(Fill(Name, I)));
    S.Mems[Name] = std::move(V);
  }
  return S;
}

fil::Store dahlia::LoweredProgram::makeZeroStore() const {
  return makeStore(+[](const std::string &, int64_t) { return int64_t(0); });
}

//===----------------------------------------------------------------------===//
// Lowerer
//===----------------------------------------------------------------------===//

namespace {

/// A (partially) statically analyzed index: Scale * Var + Const when
/// IsAffine, with HasVar false for pure constants. Raw always carries the
/// runtime expression.
struct AffineIdx {
  fil::ExprP Raw;
  bool IsAffine = false;
  bool HasVar = false;
  std::string VarName;
  int64_t Scale = 0;
  int64_t Const = 0;

  static AffineIdx constant(int64_t C) {
    AffineIdx A;
    A.Raw = fil::Expr::num(C);
    A.IsAffine = true;
    A.Const = C;
    return A;
  }
};

int64_t floorMod(int64_t A, int64_t B) { return ((A % B) + B) % B; }

/// Whether a Dahlia expression is free of memory reads and calls (safe to
/// re-evaluate, e.g. as a view offset or while condition).
bool isPureExpr(const Expr &E) {
  switch (E.kind()) {
  case ExprKind::IntLit:
  case ExprKind::FloatLit:
  case ExprKind::BoolLit:
  case ExprKind::Var:
    return true;
  case ExprKind::BinOp: {
    const auto &B = *E.as<BinOpExpr>();
    return isPureExpr(B.lhs()) && isPureExpr(B.rhs());
  }
  default:
    return false;
  }
}

/// Lowers Dahlia programs to Filament. One instance per program.
class Lowerer {
public:
  Result<LoweredProgram> run(const Program &P) {
    for (const FuncDef &F : P.Funcs)
      Funcs[F.Name] = &F;
    pushScope();
    for (const ExternDecl &D : P.Decls) {
      LoweredMem LM = declareMemory(D.Name, *D.Ty);
      Output.Mems[D.Name] = LM;
    }
    std::vector<fil::CmdP> Body;
    if (P.Body)
      lowerCmd(*P.Body, Body);
    popScope();
    if (Err)
      return *Err;
    LoweredProgram Out = std::move(Output);
    Out.Program = fil::parAll(Body);
    Out.MemSigs = MemSigs;
    return Out;
  }

private:
  //===--------------------------------------------------------------------===//
  // State
  //===--------------------------------------------------------------------===//

  struct IterInfo {
    std::string LoopVar;
    int64_t Scale = 1;  ///< Unroll factor.
    int64_t Offset = 0; ///< lo + copy index.
  };

  struct ViewLow {
    ViewKind VK = ViewKind::Shrink;
    std::string Under;
    std::vector<int64_t> Factors;       ///< shrink/split.
    std::vector<const Expr *> Offsets;  ///< suffix/shift.
    std::vector<MemDim> ViewDims;       ///< the view's own dims.
  };

  struct Binding {
    enum Kind { Var, Mem, View, Iter, CombineReg } K = Var;
    std::string FilName;
    LoweredMem LM;
    ViewLow VL;
    IterInfo It;
    std::vector<std::string> Copies; ///< CombineReg per-copy names.
  };

  std::map<std::string, const FuncDef *> Funcs;
  std::vector<std::string> InlineStack;
  std::vector<std::map<std::string, Binding>> Scopes;
  std::map<std::string, int64_t> MemSigs;
  std::map<std::string, std::string> ReadMemo; ///< access sig -> temp.
  LoweredProgram Output;
  std::optional<Error> Err;
  unsigned NextId = 0;
  int CombineCopy = -1; ///< Active copy while expanding a reducer.

  //===--------------------------------------------------------------------===//
  // Infrastructure
  //===--------------------------------------------------------------------===//

  void fail(const std::string &Msg, SourceLoc Loc) {
    if (!Err)
      Err = Error(ErrorKind::Internal, Msg, Loc);
  }

  std::string fresh(const std::string &Base) {
    return Base + "%" + std::to_string(NextId++);
  }

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }

  Binding *lookup(const std::string &Name) {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return &Found->second;
    }
    return nullptr;
  }

  LoweredMem declareMemory(const std::string &Name, const Type &Ty) {
    assert(Ty.isMem() && "expected memory type");
    if (Ty.memPorts() != 1)
      fail("multi-ported memory '" + Name +
               "' cannot be lowered: the core calculus tracks one affine "
               "resource per memory (quantitative ports are future work)",
           SourceLoc());
    LoweredMem LM;
    int64_t TotalBanks = Ty.memTotalBanks();
    int64_t BankSize = Ty.memTotalSize() / TotalBanks;
    for (const MemDim &D : Ty.memDims()) {
      LM.DimSizes.push_back(D.Size);
      LM.DimBanks.push_back(D.Banks);
    }
    LM.BankSize = BankSize;
    std::string Base = fresh(Name);
    for (int64_t B = 0; B != TotalBanks; ++B) {
      std::string BankName = Base + "@" + std::to_string(B);
      MemSigs[BankName] = BankSize;
      LM.BankNames.push_back(std::move(BankName));
    }
    Binding Bind;
    Bind.K = Binding::Mem;
    Bind.LM = LM;
    Scopes.back()[Name] = std::move(Bind);
    return LM;
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  static fil::Op mapOp(BinOpKind Op, bool &Swap) {
    Swap = false;
    switch (Op) {
    case BinOpKind::Add:
      return fil::Op::Add;
    case BinOpKind::Sub:
      return fil::Op::Sub;
    case BinOpKind::Mul:
      return fil::Op::Mul;
    case BinOpKind::Div:
      return fil::Op::Div;
    case BinOpKind::Mod:
      return fil::Op::Mod;
    case BinOpKind::Eq:
      return fil::Op::Eq;
    case BinOpKind::Neq:
      return fil::Op::Neq;
    case BinOpKind::Lt:
      return fil::Op::Lt;
    case BinOpKind::Le:
      return fil::Op::Le;
    case BinOpKind::Gt:
      Swap = true;
      return fil::Op::Lt;
    case BinOpKind::Ge:
      Swap = true;
      return fil::Op::Le;
    case BinOpKind::And:
      return fil::Op::And;
    case BinOpKind::Or:
      return fil::Op::Or;
    }
    return fil::Op::Add;
  }

  /// Lowers \p E, appending read-hoisting statements to \p Out.
  fil::ExprP lowerExpr(const Expr &E, std::vector<fil::CmdP> &Out) {
    switch (E.kind()) {
    case ExprKind::IntLit:
      return fil::Expr::num(E.as<IntLitExpr>()->value());
    case ExprKind::FloatLit:
      // Core values are integers; float programs run with truncated
      // semantics (access behaviour, which is what the checked semantics
      // observes, is unaffected).
      return fil::Expr::num(
          static_cast<int64_t>(std::llround(E.as<FloatLitExpr>()->value())));
    case ExprKind::BoolLit:
      return fil::Expr::boolean(E.as<BoolLitExpr>()->value());
    case ExprKind::Var: {
      const auto &V = *E.as<VarExpr>();
      Binding *B = lookup(V.name());
      if (!B) {
        fail("unbound name '" + V.name() + "' during lowering", V.loc());
        return fil::Expr::num(0);
      }
      switch (B->K) {
      case Binding::Var:
        return fil::Expr::var(B->FilName);
      case Binding::Iter: {
        fil::ExprP Val = fil::Expr::var(B->It.LoopVar);
        if (B->It.Scale != 1)
          Val = fil::Expr::binop(fil::Op::Mul, fil::Expr::num(B->It.Scale),
                                 Val);
        if (B->It.Offset != 0)
          Val = fil::Expr::binop(fil::Op::Add, Val,
                                 fil::Expr::num(B->It.Offset));
        return Val;
      }
      case Binding::CombineReg: {
        if (CombineCopy < 0 ||
            static_cast<size_t>(CombineCopy) >= B->Copies.size()) {
          fail("combine register '" + V.name() + "' used outside a reducer",
               V.loc());
          return fil::Expr::num(0);
        }
        return fil::Expr::var(B->Copies[static_cast<size_t>(CombineCopy)]);
      }
      default:
        fail("memory '" + V.name() + "' used as a value during lowering",
             V.loc());
        return fil::Expr::num(0);
      }
    }
    case ExprKind::BinOp: {
      const auto &B = *E.as<BinOpExpr>();
      fil::ExprP L = lowerExpr(B.lhs(), Out);
      fil::ExprP R = lowerExpr(B.rhs(), Out);
      bool Swap = false;
      fil::Op O = mapOp(B.op(), Swap);
      if (Swap)
        std::swap(L, R);
      return fil::Expr::binop(O, L, R);
    }
    case ExprKind::Access:
      return lowerRead(*E.as<AccessExpr>(), Out);
    case ExprKind::PhysAccess:
      return lowerPhysRead(*E.as<PhysAccessExpr>(), Out);
    case ExprKind::App:
      fail("calls that return values are not supported by lowering "
           "(inline the computation or use a void function)",
           E.loc());
      return fil::Expr::num(0);
    }
    return fil::Expr::num(0);
  }

  //===--------------------------------------------------------------------===//
  // Index analysis and access lowering
  //===--------------------------------------------------------------------===//

  /// Computes both the runtime expression and, when possible, the affine
  /// description of a Dahlia index expression.
  AffineIdx affineOf(const Expr &E, std::vector<fil::CmdP> &Out) {
    AffineIdx A;
    switch (E.kind()) {
    case ExprKind::IntLit:
      return AffineIdx::constant(E.as<IntLitExpr>()->value());
    case ExprKind::Var: {
      Binding *B = lookup(E.as<VarExpr>()->name());
      if (B && B->K == Binding::Iter) {
        A.Raw = lowerExpr(E, Out);
        A.IsAffine = true;
        A.HasVar = true;
        A.VarName = B->It.LoopVar;
        A.Scale = B->It.Scale;
        A.Const = B->It.Offset;
        return A;
      }
      if (B && B->K == Binding::Var) {
        A.Raw = fil::Expr::var(B->FilName);
        A.IsAffine = true;
        A.HasVar = true;
        A.VarName = B->FilName;
        A.Scale = 1;
        A.Const = 0;
        return A;
      }
      break;
    }
    case ExprKind::BinOp: {
      const auto &B = *E.as<BinOpExpr>();
      if (B.op() == BinOpKind::Add || B.op() == BinOpKind::Sub ||
          B.op() == BinOpKind::Mul) {
        AffineIdx L = affineOf(B.lhs(), Out);
        AffineIdx R = affineOf(B.rhs(), Out);
        bool Swap = false;
        fil::Op O = mapOp(B.op(), Swap);
        A.Raw = fil::Expr::binop(O, L.Raw, R.Raw);
        if (L.IsAffine && R.IsAffine) {
          if (B.op() == BinOpKind::Add && !(L.HasVar && R.HasVar)) {
            const AffineIdx &VarSide = L.HasVar ? L : R;
            const AffineIdx &ConstSide = L.HasVar ? R : L;
            A.IsAffine = true;
            A.HasVar = VarSide.HasVar;
            A.VarName = VarSide.VarName;
            A.Scale = VarSide.Scale;
            A.Const = VarSide.Const + ConstSide.Const;
            return A;
          }
          if (B.op() == BinOpKind::Sub && !R.HasVar) {
            A.IsAffine = true;
            A.HasVar = L.HasVar;
            A.VarName = L.VarName;
            A.Scale = L.Scale;
            A.Const = L.Const - R.Const;
            return A;
          }
          if (B.op() == BinOpKind::Mul && !(L.HasVar && R.HasVar)) {
            const AffineIdx &VarSide = L.HasVar ? L : R;
            const AffineIdx &ConstSide = L.HasVar ? R : L;
            A.IsAffine = true;
            A.HasVar = VarSide.HasVar;
            A.VarName = VarSide.VarName;
            A.Scale = VarSide.Scale * ConstSide.Const;
            A.Const = VarSide.Const * ConstSide.Const;
            return A;
          }
        }
        return A;
      }
      break;
    }
    default:
      break;
    }
    A.Raw = lowerExpr(E, Out);
    return A;
  }

  /// Resolves a (possibly view) access down to the root memory, producing
  /// per-dimension analyzed indices.
  bool resolveAccess(const std::string &Name,
                     const std::vector<ExprPtr> &Indices, SourceLoc Loc,
                     std::vector<fil::CmdP> &Out, LoweredMem &RootMem,
                     std::vector<AffineIdx> &Dims) {
    Binding *B = lookup(Name);
    if (!B || (B->K != Binding::Mem && B->K != Binding::View)) {
      fail("unknown memory '" + Name + "' during lowering", Loc);
      return false;
    }
    Dims.clear();
    for (const ExprPtr &I : Indices)
      Dims.push_back(affineOf(*I, Out));

    std::string Cur = Name;
    while (true) {
      Binding *CurB = lookup(Cur);
      if (CurB->K == Binding::Mem) {
        RootMem = CurB->LM;
        return true;
      }
      const ViewLow &VL = CurB->VL;
      std::vector<AffineIdx> UnderDims;
      size_t VD = 0;
      Binding *UnderB = lookup(VL.Under);
      const std::vector<MemDim> &ViewDims = VL.ViewDims;
      size_t NumUnderDims =
          UnderB->K == Binding::Mem ? UnderB->LM.DimSizes.size()
                                    : UnderB->VL.ViewDims.size();
      for (size_t UD = 0; UD != NumUnderDims; ++UD) {
        switch (VL.VK) {
        case ViewKind::Shrink:
          // shrink accesses compile to direct accesses: sh[i] => A[i].
          UnderDims.push_back(Dims[VD]);
          ++VD;
          break;
        case ViewKind::Suffix:
        case ViewKind::Shift: {
          // v[i] => M[off + i].
          AffineIdx Off = affineOf(*VL.Offsets[UD], Out);
          AffineIdx Idx = Dims[VD];
          AffineIdx Sum;
          Sum.Raw = fil::Expr::binop(fil::Op::Add, Off.Raw, Idx.Raw);
          if (Off.IsAffine && Idx.IsAffine && !(Off.HasVar && Idx.HasVar)) {
            const AffineIdx &VarSide = Off.HasVar ? Off : Idx;
            Sum.IsAffine = true;
            Sum.HasVar = VarSide.HasVar;
            Sum.VarName = VarSide.VarName;
            Sum.Scale = VarSide.Scale;
            Sum.Const = Off.Const + Idx.Const;
          }
          UnderDims.push_back(Sum);
          ++VD;
          break;
        }
        case ViewKind::Split: {
          if (VL.Factors[UD] <= 1) {
            UnderDims.push_back(Dims[VD]);
            ++VD;
            break;
          }
          // sp[i][j] on a dim of B banks split by f: window width
          // w = B / f; element = (j / w) * B + i * w + (j % w).
          int64_t F = VL.Factors[UD];
          int64_t BanksU = ViewDims[VD].Banks * (ViewDims[VD + 1].Banks * F /
                                                 ViewDims[VD].Banks);
          // Reconstruct underlying banks: view dims are [f bank f] and
          // [n/f bank B/f], so B = f * (B/f).
          BanksU = ViewDims[VD].Banks * ViewDims[VD + 1].Banks;
          int64_t W = BanksU / F;
          const AffineIdx &Ia = Dims[VD];
          const AffineIdx &Jb = Dims[VD + 1];
          AffineIdx Res;
          Res.Raw = fil::Expr::binop(
              fil::Op::Add,
              fil::Expr::binop(
                  fil::Op::Mul,
                  fil::Expr::binop(fil::Op::Div, Jb.Raw, fil::Expr::num(W)),
                  fil::Expr::num(BanksU)),
              fil::Expr::binop(
                  fil::Op::Add,
                  fil::Expr::binop(fil::Op::Mul, Ia.Raw, fil::Expr::num(W)),
                  fil::Expr::binop(fil::Op::Mod, Jb.Raw, fil::Expr::num(W))));
          // Static only when both coordinates are constants.
          if (Ia.IsAffine && !Ia.HasVar && Jb.IsAffine && !Jb.HasVar) {
            Res.IsAffine = true;
            Res.Const =
                (Jb.Const / W) * BanksU + Ia.Const * W + (Jb.Const % W);
          }
          UnderDims.push_back(Res);
          VD += 2;
          break;
        }
        }
      }
      Dims = std::move(UnderDims);
      Cur = VL.Under;
    }
  }

  /// Bank of dimension \p D for index \p A, if statically known.
  static std::optional<int64_t> staticBank(const AffineIdx &A, int64_t Banks) {
    if (!A.IsAffine)
      return std::nullopt;
    if (!A.HasVar)
      return floorMod(A.Const, Banks);
    if (A.Scale % Banks == 0)
      return floorMod(A.Const, Banks);
    return std::nullopt;
  }

  /// Emits the read of one access; returns a variable holding the value.
  fil::ExprP lowerRead(const AccessExpr &A, std::vector<fil::CmdP> &Out) {
    LoweredMem RootMem;
    std::vector<AffineIdx> Dims;
    if (!resolveAccess(A.mem(), A.indices(), A.loc(), Out, RootMem, Dims))
      return fil::Expr::num(0);
    return emitRead(RootMem, Dims, Out);
  }

  fil::ExprP lowerPhysRead(const PhysAccessExpr &A,
                           std::vector<fil::CmdP> &Out) {
    Binding *B = lookup(A.mem());
    if (!B || B->K != Binding::Mem) {
      fail("physical access requires a root memory", A.loc());
      return fil::Expr::num(0);
    }
    // The checker guarantees a static bank.
    int64_t Bank = 0;
    if (const auto *I = A.bank().as<IntLitExpr>())
      Bank = I->value();
    fil::ExprP Off = lowerExpr(A.offset(), Out);
    const std::string &BankMem =
        B->LM.BankNames[static_cast<size_t>(Bank)];
    std::string Sig = BankMem + "[" + fil::printExpr(*Off) + "]";
    auto Memo = ReadMemo.find(Sig);
    if (Memo != ReadMemo.end())
      return fil::Expr::var(Memo->second);
    std::string Tmp = fresh("t");
    Out.push_back(fil::Cmd::let(Tmp, fil::Expr::read(BankMem, Off)));
    ReadMemo[Sig] = Tmp;
    return fil::Expr::var(Tmp);
  }

  /// Flat bank/offset expressions for an access. When every dimension's
  /// bank is static the access reads/writes one core memory directly;
  /// otherwise an if-chain dispatches on the computed flat bank.
  struct AccessPlan {
    std::optional<int64_t> StaticBank;
    fil::ExprP BankExpr; ///< Used when StaticBank is empty.
    fil::ExprP OffExpr;
  };

  AccessPlan planAccess(const LoweredMem &LM,
                        const std::vector<AffineIdx> &Dims) {
    AccessPlan Plan;
    bool AllStatic = true;
    int64_t FlatBank = 0;
    fil::ExprP BankE = fil::Expr::num(0);
    fil::ExprP OffE = fil::Expr::num(0);
    for (size_t D = 0; D != Dims.size(); ++D) {
      int64_t B = LM.DimBanks[D];
      int64_t BankLen = LM.DimSizes[D] / B;
      std::optional<int64_t> SB = staticBank(Dims[D], B);
      if (SB) {
        FlatBank = FlatBank * B + *SB;
        BankE = fil::Expr::binop(
            fil::Op::Add,
            fil::Expr::binop(fil::Op::Mul, BankE, fil::Expr::num(B)),
            fil::Expr::num(*SB));
      } else {
        AllStatic = false;
        BankE = fil::Expr::binop(
            fil::Op::Add,
            fil::Expr::binop(fil::Op::Mul, BankE, fil::Expr::num(B)),
            fil::Expr::binop(fil::Op::Mod, Dims[D].Raw, fil::Expr::num(B)));
      }
      fil::ExprP DimOff =
          B == 1 ? Dims[D].Raw
                 : fil::Expr::binop(fil::Op::Div, Dims[D].Raw,
                                    fil::Expr::num(B));
      OffE = fil::Expr::binop(
          fil::Op::Add,
          fil::Expr::binop(fil::Op::Mul, OffE, fil::Expr::num(BankLen)),
          DimOff);
    }
    if (AllStatic)
      Plan.StaticBank = FlatBank;
    Plan.BankExpr = BankE;
    Plan.OffExpr = OffE;
    return Plan;
  }

  fil::ExprP emitRead(const LoweredMem &LM, const std::vector<AffineIdx> &Dims,
                      std::vector<fil::CmdP> &Out) {
    AccessPlan Plan = planAccess(LM, Dims);
    std::ostringstream SigOS;
    SigOS << LM.BankNames.front() << '!';
    for (const AffineIdx &D : Dims)
      SigOS << '[' << fil::printExpr(*D.Raw) << ']';
    std::string Sig = SigOS.str();
    auto Memo = ReadMemo.find(Sig);
    if (Memo != ReadMemo.end())
      return fil::Expr::var(Memo->second);

    std::string Tmp = fresh("t");
    if (Plan.StaticBank) {
      const std::string &BankMem =
          LM.BankNames[static_cast<size_t>(*Plan.StaticBank)];
      Out.push_back(
          fil::Cmd::let(Tmp, fil::Expr::read(BankMem, Plan.OffExpr)));
    } else {
      // let t = 0; let b = <bank>; if (b == 0) t := m@0[off] else if ...
      Out.push_back(fil::Cmd::let(Tmp, fil::Expr::num(0)));
      std::string BankVar = fresh("b");
      Out.push_back(fil::Cmd::let(BankVar, Plan.BankExpr));
      fil::CmdP Chain = fil::Cmd::skip();
      for (size_t B = LM.BankNames.size(); B-- > 0;) {
        Chain = fil::Cmd::ifc(
            fil::Expr::binop(fil::Op::Eq, fil::Expr::var(BankVar),
                             fil::Expr::num(static_cast<int64_t>(B))),
            fil::Cmd::assign(
                Tmp, fil::Expr::read(LM.BankNames[B], Plan.OffExpr)),
            Chain);
      }
      Out.push_back(Chain);
    }
    ReadMemo[Sig] = Tmp;
    return fil::Expr::var(Tmp);
  }

  void emitWrite(const LoweredMem &LM, const std::vector<AffineIdx> &Dims,
                 fil::ExprP Value, std::vector<fil::CmdP> &Out) {
    AccessPlan Plan = planAccess(LM, Dims);
    if (Plan.StaticBank) {
      Out.push_back(fil::Cmd::write(
          LM.BankNames[static_cast<size_t>(*Plan.StaticBank)], Plan.OffExpr,
          Value));
      return;
    }
    std::string BankVar = fresh("b");
    Out.push_back(fil::Cmd::let(BankVar, Plan.BankExpr));
    std::string ValVar = fresh("v");
    Out.push_back(fil::Cmd::let(ValVar, Value));
    fil::CmdP Chain = fil::Cmd::skip();
    for (size_t B = LM.BankNames.size(); B-- > 0;) {
      Chain = fil::Cmd::ifc(
          fil::Expr::binop(fil::Op::Eq, fil::Expr::var(BankVar),
                           fil::Expr::num(static_cast<int64_t>(B))),
          fil::Cmd::write(LM.BankNames[B], Plan.OffExpr,
                          fil::Expr::var(ValVar)),
          Chain);
    }
    Out.push_back(Chain);
  }

  //===--------------------------------------------------------------------===//
  // Commands
  //===--------------------------------------------------------------------===//

  void lowerCmd(const Cmd &C, std::vector<fil::CmdP> &Out) {
    if (Err)
      return;
    switch (C.kind()) {
    case CmdKind::Skip:
      return;
    case CmdKind::Block: {
      pushScope();
      lowerCmd(C.as<BlockCmd>()->body(), Out);
      popScope();
      return;
    }
    case CmdKind::Par: {
      for (const CmdPtr &Sub : C.as<ParCmd>()->cmds())
        lowerCmd(*Sub, Out);
      return;
    }
    case CmdKind::Seq: {
      const auto &S = *C.as<SeqCmd>();
      auto OuterMemo = ReadMemo;
      std::vector<fil::CmdP> Steps;
      bool First = true;
      for (const CmdPtr &Step : S.cmds()) {
        // `---` discards read capabilities: later steps re-read.
        ReadMemo = First ? OuterMemo : std::map<std::string, std::string>();
        First = false;
        std::vector<fil::CmdP> StepCmds;
        lowerCmd(*Step, StepCmds);
        Steps.push_back(fil::parAll(StepCmds));
      }
      ReadMemo = std::move(OuterMemo);
      Out.push_back(fil::seqAll(Steps));
      return;
    }
    case CmdKind::Let:
      return lowerLet(*C.as<LetCmd>(), Out);
    case CmdKind::View:
      return lowerView(*C.as<ViewCmd>());
    case CmdKind::If:
      return lowerIf(*C.as<IfCmd>(), Out);
    case CmdKind::While:
      return lowerWhile(*C.as<WhileCmd>(), Out);
    case CmdKind::For:
      return lowerFor(*C.as<ForCmd>(), Out);
    case CmdKind::Assign: {
      const auto &A = *C.as<AssignCmd>();
      Binding *B = lookup(A.name());
      if (!B || B->K != Binding::Var) {
        fail("assignment target '" + A.name() + "' is not a variable",
             A.loc());
        return;
      }
      fil::ExprP V = lowerExpr(A.value(), Out);
      Out.push_back(fil::Cmd::assign(B->FilName, V));
      return;
    }
    case CmdKind::ReduceAssign:
      return lowerReduce(*C.as<ReduceAssignCmd>(), Out);
    case CmdKind::Store: {
      const auto &S = *C.as<StoreCmd>();
      fil::ExprP V = lowerExpr(S.value(), Out);
      if (const auto *A = S.target().as<AccessExpr>()) {
        LoweredMem RootMem;
        std::vector<AffineIdx> Dims;
        if (resolveAccess(A->mem(), A->indices(), A->loc(), Out, RootMem,
                          Dims))
          emitWrite(RootMem, Dims, V, Out);
        return;
      }
      if (const auto *PA = S.target().as<PhysAccessExpr>()) {
        Binding *B = lookup(PA->mem());
        int64_t Bank = 0;
        if (const auto *I = PA->bank().as<IntLitExpr>())
          Bank = I->value();
        fil::ExprP Off = lowerExpr(PA->offset(), Out);
        Out.push_back(fil::Cmd::write(
            B->LM.BankNames[static_cast<size_t>(Bank)], Off, V));
        return;
      }
      fail("unsupported store target", S.loc());
      return;
    }
    case CmdKind::Expr: {
      const auto &E = C.as<ExprCmd>()->expr();
      if (const auto *App = E.as<AppExpr>()) {
        lowerCall(*App, Out);
        return;
      }
      fil::ExprP V = lowerExpr(E, Out);
      Out.push_back(fil::Cmd::expr(V));
      return;
    }
    }
  }

  void lowerLet(const LetCmd &L, std::vector<fil::CmdP> &Out) {
    if (L.declType() && L.declType()->isMem()) {
      declareMemory(L.name(), *L.declType());
      return;
    }
    std::string FilName = fresh(L.name());
    fil::ExprP Init = L.init() ? lowerExpr(*L.init(), Out)
                               : fil::ExprP(fil::Expr::num(0));
    Out.push_back(fil::Cmd::let(FilName, Init));
    Binding B;
    B.K = Binding::Var;
    B.FilName = FilName;
    Scopes.back()[L.name()] = std::move(B);
  }

  void lowerView(const ViewCmd &V) {
    Binding *UB = lookup(V.mem());
    if (!UB || (UB->K != Binding::Mem && UB->K != Binding::View)) {
      fail("view over unknown memory '" + V.mem() + "'", V.loc());
      return;
    }
    ViewLow VL;
    VL.VK = V.viewKind();
    VL.Under = V.mem();
    // Reconstruct the view's dims (mirrors the checker).
    std::vector<MemDim> UnderDims;
    if (UB->K == Binding::Mem) {
      for (size_t D = 0; D != UB->LM.DimSizes.size(); ++D)
        UnderDims.push_back({UB->LM.DimSizes[D], UB->LM.DimBanks[D]});
    } else {
      UnderDims = UB->VL.ViewDims;
    }
    for (size_t D = 0; D != V.params().size(); ++D) {
      const ViewDimParam &P = V.params()[D];
      const MemDim &UD = UnderDims[D];
      switch (V.viewKind()) {
      case ViewKind::Shrink:
        VL.Factors.push_back(P.Factor);
        VL.ViewDims.push_back({UD.Size, UD.Banks / P.Factor});
        break;
      case ViewKind::Suffix:
      case ViewKind::Shift:
        if (P.Offset && !isPureExpr(*P.Offset)) {
          fail("view offsets with memory reads are not supported by "
               "lowering",
               V.loc());
          return;
        }
        VL.Offsets.push_back(P.Offset.get());
        VL.ViewDims.push_back(UD);
        break;
      case ViewKind::Split:
        VL.Factors.push_back(P.Factor);
        if (P.Factor <= 1) {
          VL.ViewDims.push_back(UD);
        } else {
          VL.ViewDims.push_back({P.Factor, P.Factor});
          VL.ViewDims.push_back({UD.Size / P.Factor, UD.Banks / P.Factor});
        }
        break;
      }
    }
    Binding B;
    B.K = Binding::View;
    B.VL = std::move(VL);
    Scopes.back()[V.name()] = std::move(B);
  }

  void lowerIf(const IfCmd &I, std::vector<fil::CmdP> &Out) {
    fil::ExprP Cond = lowerExpr(I.cond(), Out);
    auto SavedMemo = ReadMemo;
    std::vector<fil::CmdP> Then;
    pushScope();
    lowerCmd(I.thenCmd(), Then);
    popScope();
    ReadMemo = SavedMemo;
    std::vector<fil::CmdP> Else;
    if (I.elseCmd()) {
      pushScope();
      lowerCmd(*I.elseCmd(), Else);
      popScope();
    }
    ReadMemo = std::move(SavedMemo);
    Out.push_back(
        fil::Cmd::ifc(Cond, fil::parAll(Then), fil::parAll(Else)));
  }

  void lowerWhile(const WhileCmd &W, std::vector<fil::CmdP> &Out) {
    std::vector<fil::CmdP> CondPre;
    fil::ExprP Cond = lowerExpr(W.cond(), CondPre);
    if (!CondPre.empty()) {
      fail("while conditions with memory reads are not supported by "
           "lowering",
           W.loc());
      return;
    }
    auto SavedMemo = ReadMemo;
    ReadMemo.clear();
    std::vector<fil::CmdP> Body;
    pushScope();
    lowerCmd(W.body(), Body);
    popScope();
    ReadMemo = std::move(SavedMemo);
    Out.push_back(fil::Cmd::whilec(Cond, fil::parAll(Body)));
  }

  /// One unrolled instance of the loop nest being lowered: the stack of
  /// persistent scopes (outermost loop's copy scope first) this instance
  /// pushes before lowering a leaf command. A single loop contributes K
  /// lanes; fused nested loops multiply them out.
  using Lane = std::vector<std::map<std::string, Binding>>;

  void lowerFor(const ForCmd &F, std::vector<fil::CmdP> &Out) {
    std::vector<Lane> One(1);
    lowerForLanes(F, One, Out);
  }

  /// Strips `{ ... }` wrappers. Only used on the path that detects a
  /// nested loop step — a block whose body is exactly a loop has an empty
  /// scope of its own, so nothing is lost.
  static const Cmd *unwrapBlocks(const Cmd *C) {
    while (const auto *Blk = C->as<BlockCmd>())
      C = &Blk->body();
    return C;
  }

  /// Lowers one logical time step of a loop body for every lane. A step
  /// that is itself a for loop is NOT lowered once per lane: that would
  /// give each lane a private loop counter, so identical reads in
  /// different lanes would no longer memoize into one broadcast fetch
  /// (ReadMemo keys on the rendered address) and the strictly affine
  /// Filament interpreter would get stuck on programs the surface checker
  /// accepts via shared read capabilities. Instead the nested loop is
  /// emitted once and all lanes run inside its body in lockstep
  /// (lowerForLanes), which is the paper's reading of unrolling: copies
  /// advance through the schedule together.
  void lowerStepLanes(const Cmd &Step, std::vector<Lane> &Lanes,
                      std::vector<fil::CmdP> &Out) {
    const Cmd *Inner = unwrapBlocks(&Step);
    if (const auto *F = Inner->as<ForCmd>()) {
      lowerForLanes(*F, Lanes, Out);
      return;
    }
    if (const auto *P = Inner->as<ParCmd>()) {
      // Split the step so a nested loop inside it still fuses. Lanes
      // never reference each other's bindings, so grouping by
      // sub-command instead of by lane preserves the par semantics.
      for (const CmdPtr &Sub : P->cmds())
        lowerStepLanes(*Sub, Lanes, Out);
      return;
    }
    for (Lane &L : Lanes) {
      for (auto &S : L)
        Scopes.push_back(std::move(S));
      lowerCmd(Step, Out);
      for (size_t I = L.size(); I-- > 0;) {
        L[I] = std::move(Scopes.back());
        Scopes.pop_back();
      }
    }
  }

  /// Lowers \p F once, shared by every ambient lane. The loop counter is
  /// emitted a single time; the lane set inside the body is the cross
  /// product of \p Ambient with this loop's unrolled copies.
  void lowerForLanes(const ForCmd &F, std::vector<Lane> &Ambient,
                     std::vector<fil::CmdP> &Out) {
    int64_t K = F.unroll();
    int64_t Trip = (F.hi() - F.lo()) / K;
    std::string LoopVar = fresh(F.iter() + "_it");
    Out.push_back(fil::Cmd::let(LoopVar, fil::Expr::num(0)));

    // Collect the body's logical time steps.
    const Cmd *Body = &F.body();
    if (const auto *Blk = Body->as<BlockCmd>())
      Body = &Blk->body();
    std::vector<const Cmd *> StepsSrc;
    if (const auto *S = Body->as<SeqCmd>())
      for (const CmdPtr &Step : S->cmds())
        StepsSrc.push_back(Step.get());
    else
      StepsSrc.push_back(Body);

    // Each (ambient lane × unrolled copy) instance gets a persistent
    // scope for this loop, so bindings made in one time step are visible
    // to the instance's later steps. All instances share LoopVar: copy J
    // maps the iterator to LoopVar * K + lo + J, so two lanes indexing a
    // memory the same way render the same address and memoize into one
    // broadcast read.
    size_t N = Ambient.size();
    std::vector<Lane> Lanes;
    Lanes.reserve(N * static_cast<size_t>(K));
    for (size_t A = 0; A != N; ++A)
      for (int64_t J = 0; J != K; ++J) {
        Lane L = Ambient[A];
        Binding IterB;
        IterB.K = Binding::Iter;
        IterB.It = {LoopVar, K, F.lo() + J};
        std::map<std::string, Binding> Scope;
        Scope[F.iter()] = std::move(IterB);
        L.push_back(std::move(Scope));
        Lanes.push_back(std::move(L));
      }

    auto SavedMemo = ReadMemo;
    std::vector<fil::CmdP> Steps;
    for (const Cmd *Step : StepsSrc) {
      ReadMemo.clear();
      std::vector<fil::CmdP> StepCmds;
      lowerStepLanes(*Step, Lanes, StepCmds);
      Steps.push_back(fil::parAll(StepCmds));
    }

    // The combine block runs as one more time step per iteration group,
    // with each body let visible as a per-copy combine register. One
    // combine instance per ambient lane, each folding its own K copies.
    if (F.combine()) {
      ReadMemo.clear();
      std::vector<fil::CmdP> CombineCmds;
      const Cmd *Comb = F.combine();
      if (const auto *Blk = Comb->as<BlockCmd>())
        Comb = &Blk->body();
      for (size_t A = 0; A != N; ++A) {
        size_t LaneBase = A * static_cast<size_t>(K);
        std::map<std::string, Binding> CombScope;
        for (const auto &[Name, B0] : Lanes[LaneBase].back()) {
          if (B0.K != Binding::Var)
            continue;
          Binding CR;
          CR.K = Binding::CombineReg;
          for (int64_t J = 0; J != K; ++J) {
            const auto &LS = Lanes[LaneBase + static_cast<size_t>(J)].back();
            auto It = LS.find(Name);
            assert(It != LS.end() && "combine register missing in copy");
            CR.Copies.push_back(It->second.FilName);
          }
          CombScope[Name] = std::move(CR);
        }
        for (auto &S : Ambient[A])
          Scopes.push_back(std::move(S));
        Scopes.push_back(std::move(CombScope));
        lowerCmd(*Comb, CombineCmds);
        Scopes.pop_back();
        for (size_t I = Ambient[A].size(); I-- > 0;) {
          Ambient[A][I] = std::move(Scopes.back());
          Scopes.pop_back();
        }
      }
      Steps.push_back(fil::parAll(CombineCmds));
    }
    ReadMemo = std::move(SavedMemo);

    // Final step: advance the loop counter.
    Steps.push_back(fil::Cmd::assign(
        LoopVar, fil::Expr::binop(fil::Op::Add, fil::Expr::var(LoopVar),
                                  fil::Expr::num(1))));
    Out.push_back(fil::Cmd::whilec(
        fil::Expr::binop(fil::Op::Lt, fil::Expr::var(LoopVar),
                         fil::Expr::num(Trip)),
        fil::seqAll(Steps)));
  }

  void lowerReduce(const ReduceAssignCmd &R, std::vector<fil::CmdP> &Out) {
    Binding *Target = lookup(R.name());
    if (!Target || Target->K != Binding::Var) {
      fail("reducer target '" + R.name() + "' is not a variable", R.loc());
      return;
    }
    bool Swap = false;
    fil::Op O = mapOp(R.op(), Swap);
    // Does the RHS mention a combine register? If so expand per copy.
    int Copies = combineCopiesIn(R.value());
    if (Copies <= 0) {
      fil::ExprP V = lowerExpr(R.value(), Out);
      Out.push_back(fil::Cmd::assign(
          Target->FilName,
          fil::Expr::binop(O, fil::Expr::var(Target->FilName), V)));
      return;
    }
    for (int J = 0; J != Copies; ++J) {
      CombineCopy = J;
      fil::ExprP V = lowerExpr(R.value(), Out);
      Out.push_back(fil::Cmd::assign(
          Target->FilName,
          fil::Expr::binop(O, fil::Expr::var(Target->FilName), V)));
    }
    CombineCopy = -1;
  }

  /// Number of copies of the combine registers mentioned by \p E (0 when
  /// none).
  int combineCopiesIn(const Expr &E) {
    switch (E.kind()) {
    case ExprKind::Var: {
      Binding *B = lookup(E.as<VarExpr>()->name());
      if (B && B->K == Binding::CombineReg)
        return static_cast<int>(B->Copies.size());
      return 0;
    }
    case ExprKind::BinOp: {
      const auto &B = *E.as<BinOpExpr>();
      return std::max(combineCopiesIn(B.lhs()), combineCopiesIn(B.rhs()));
    }
    case ExprKind::Access: {
      const auto &A = *E.as<AccessExpr>();
      int N = 0;
      for (const ExprPtr &I : A.indices())
        N = std::max(N, combineCopiesIn(*I));
      return N;
    }
    default:
      return 0;
    }
  }

  void lowerCall(const AppExpr &A, std::vector<fil::CmdP> &Out) {
    auto It = Funcs.find(A.callee());
    if (It == Funcs.end()) {
      fail("call to unknown function '" + A.callee() + "'", A.loc());
      return;
    }
    const FuncDef &F = *It->second;
    for (const std::string &Active : InlineStack) {
      if (Active == F.Name) {
        fail("recursive call to '" + F.Name + "' cannot be inlined",
             A.loc());
        return;
      }
    }
    if (A.args().size() != F.Params.size()) {
      fail("arity mismatch calling '" + F.Name + "'", A.loc());
      return;
    }
    // Evaluate arguments and bind parameters in a fresh scope.
    std::vector<Binding> ParamBindings;
    for (size_t I = 0; I != F.Params.size(); ++I) {
      const FuncParam &P = F.Params[I];
      if (P.Ty->isMem()) {
        const auto *V = A.args()[I]->as<VarExpr>();
        Binding *MB = V ? lookup(V->name()) : nullptr;
        if (!MB || MB->K != Binding::Mem) {
          fail("memory argument must name a memory", A.loc());
          return;
        }
        Binding B;
        B.K = Binding::Mem;
        B.LM = MB->LM;
        ParamBindings.push_back(std::move(B));
        continue;
      }
      fil::ExprP Arg = lowerExpr(*A.args()[I], Out);
      std::string FilName = fresh(P.Name);
      Out.push_back(fil::Cmd::let(FilName, Arg));
      Binding B;
      B.K = Binding::Var;
      B.FilName = FilName;
      ParamBindings.push_back(std::move(B));
    }
    pushScope();
    for (size_t I = 0; I != F.Params.size(); ++I)
      Scopes.back()[F.Params[I].Name] = std::move(ParamBindings[I]);
    InlineStack.push_back(F.Name);
    if (F.Body)
      lowerCmd(*F.Body, Out);
    InlineStack.pop_back();
    popScope();
  }
};

} // namespace

Result<LoweredProgram> dahlia::lowerProgram(const Program &P) {
  return Lowerer().run(P);
}
