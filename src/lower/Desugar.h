//===- Desugar.h - Dahlia to Filament lowering ------------------*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Desugars surface Dahlia into the Filament core calculus (Section 4.5):
///
///  * a memory `t[m bank n]` becomes n core memories of size m/n each
///    (multi-dimensional memories flatten per bank);
///  * `for .. unroll k` becomes a while loop whose body composes k
///    substituted copies of each logical time step in lockstep;
///  * identical reads within a time step collapse into one read that is
///    distributed through a temporary (the hardware fan-out of 3.1);
///  * views compile to index arithmetic on the underlying memory;
///  * functions are inlined (the closed-world assumption of Section 6);
///  * combine blocks expand reducers over the per-copy combine registers.
///
/// Lowered programs run on the *checked* Filament semantics, giving an
/// executable, end-to-end test of the soundness theorem: a Dahlia program
/// accepted by the type checker must never get stuck.
///
//===----------------------------------------------------------------------===//

#ifndef DAHLIA_LOWER_DESUGAR_H
#define DAHLIA_LOWER_DESUGAR_H

#include "ast/AST.h"
#include "filament/Interp.h"
#include "filament/Syntax.h"
#include "support/Error.h"

#include <map>
#include <string>

namespace dahlia {

/// Where each bank of a lowered Dahlia memory went.
struct LoweredMem {
  std::vector<std::string> BankNames; ///< Core memory per flattened bank.
  std::vector<int64_t> DimSizes;
  std::vector<int64_t> DimBanks;
  int64_t BankSize = 0; ///< Elements per bank.

  /// Maps a logical element (multi-dim indices) to (core memory, offset).
  std::pair<std::string, int64_t>
  locate(const std::vector<int64_t> &Indices) const;
};

/// Result of lowering a whole program.
struct LoweredProgram {
  filament::CmdP Program;
  std::map<std::string, int64_t> MemSigs; ///< Core memories and sizes.
  std::map<std::string, LoweredMem> Mems; ///< By Dahlia memory name
                                          ///< (interface decls only).

  /// Builds an initial store with every memory filled by \p Fill(mem, i).
  filament::Store
  makeStore(int64_t (*Fill)(const std::string &, int64_t)) const;
  /// Builds an all-zero initial store.
  filament::Store makeZeroStore() const;
};

/// Lowers \p P, which must already have been type-checked (lowering uses
/// the types annotated on expressions). Returns the core program or a
/// description of the unsupported construct.
Result<LoweredProgram> lowerProgram(const Program &P);

} // namespace dahlia

#endif // DAHLIA_LOWER_DESUGAR_H
