//===- AST.h - Dahlia surface AST -------------------------------*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax for the Dahlia surface language (Section 3):
/// expressions, commands (with ordered `---` and unordered `;` composition,
/// `for .. unroll .. combine`, memory views), function definitions, and
/// whole programs. Nodes use an LLVM-style kind discriminator plus `as<T>`
/// casting helpers (no RTTI).
///
//===----------------------------------------------------------------------===//

#ifndef DAHLIA_AST_AST_H
#define DAHLIA_AST_AST_H

#include "ast/Type.h"
#include "support/SourceLoc.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dahlia {

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Discriminator for \c Expr.
enum class ExprKind {
  IntLit,
  FloatLit,
  BoolLit,
  Var,
  BinOp,
  Access,     ///< Logical access A[e1][e2]...
  PhysAccess, ///< Physical access A{b}[i]: explicit flattened bank + offset.
  App,        ///< Function application f(e1, ..., en).
};

/// Binary operators.
enum class BinOpKind {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Eq,
  Neq,
  Lt,
  Gt,
  Le,
  Ge,
  And,
  Or,
};

/// Surface spelling of \p Op ("+", "==", ...).
const char *binOpSpelling(BinOpKind Op);
/// True for ==, !=, <, >, <=, >= (result type bool).
bool isComparison(BinOpKind Op);
/// True for && and || (operand and result type bool).
bool isLogical(BinOpKind Op);

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Base class for expressions. After type checking, \c type() holds the
/// inferred type.
class Expr {
public:
  virtual ~Expr() = default;

  ExprKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

  const TypeRef &type() const { return Ty; }
  void setType(TypeRef T) { Ty = std::move(T); }

  template <typename T> T *as() {
    return T::classof(this) ? static_cast<T *>(this) : nullptr;
  }
  template <typename T> const T *as() const {
    return T::classof(this) ? static_cast<const T *>(this) : nullptr;
  }

  /// Deep copy (used by desugaring to duplicate unrolled bodies).
  virtual ExprPtr clone() const = 0;

protected:
  Expr(ExprKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}

private:
  ExprKind Kind;
  SourceLoc Loc;
  TypeRef Ty;
};

/// Integer literal.
class IntLitExpr final : public Expr {
public:
  IntLitExpr(int64_t Value, SourceLoc Loc)
      : Expr(ExprKind::IntLit, Loc), Value(Value) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::IntLit; }

  int64_t value() const { return Value; }
  ExprPtr clone() const override;

private:
  int64_t Value;
};

/// Floating-point literal.
class FloatLitExpr final : public Expr {
public:
  FloatLitExpr(double Value, SourceLoc Loc)
      : Expr(ExprKind::FloatLit, Loc), Value(Value) {}
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::FloatLit;
  }

  double value() const { return Value; }
  ExprPtr clone() const override;

private:
  double Value;
};

/// Boolean literal.
class BoolLitExpr final : public Expr {
public:
  BoolLitExpr(bool Value, SourceLoc Loc)
      : Expr(ExprKind::BoolLit, Loc), Value(Value) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::BoolLit; }

  bool value() const { return Value; }
  ExprPtr clone() const override;

private:
  bool Value;
};

/// Variable or memory reference by name.
class VarExpr final : public Expr {
public:
  VarExpr(std::string Name, SourceLoc Loc)
      : Expr(ExprKind::Var, Loc), Name(std::move(Name)) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Var; }

  const std::string &name() const { return Name; }
  ExprPtr clone() const override;

private:
  std::string Name;
};

/// Binary operation.
class BinOpExpr final : public Expr {
public:
  BinOpExpr(BinOpKind Op, ExprPtr LHS, ExprPtr RHS, SourceLoc Loc)
      : Expr(ExprKind::BinOp, Loc), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::BinOp; }

  BinOpKind op() const { return Op; }
  const Expr &lhs() const { return *LHS; }
  const Expr &rhs() const { return *RHS; }
  Expr &lhs() { return *LHS; }
  Expr &rhs() { return *RHS; }
  ExprPtr clone() const override;

private:
  BinOpKind Op;
  ExprPtr LHS, RHS;
};

/// Logical (bank-oblivious) memory access: A[e1][e2]...
class AccessExpr final : public Expr {
public:
  AccessExpr(std::string Mem, std::vector<ExprPtr> Indices, SourceLoc Loc)
      : Expr(ExprKind::Access, Loc), Mem(std::move(Mem)),
        Indices(std::move(Indices)) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Access; }

  const std::string &mem() const { return Mem; }
  const std::vector<ExprPtr> &indices() const { return Indices; }
  std::vector<ExprPtr> &indices() { return Indices; }
  ExprPtr clone() const override;

private:
  std::string Mem;
  std::vector<ExprPtr> Indices;
};

/// Physical memory access A{b}[i]: explicit flattened bank index plus an
/// in-bank offset (Section 3.3).
class PhysAccessExpr final : public Expr {
public:
  PhysAccessExpr(std::string Mem, ExprPtr Bank, ExprPtr Offset, SourceLoc Loc)
      : Expr(ExprKind::PhysAccess, Loc), Mem(std::move(Mem)),
        Bank(std::move(Bank)), Offset(std::move(Offset)) {}
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::PhysAccess;
  }

  const std::string &mem() const { return Mem; }
  const Expr &bank() const { return *Bank; }
  const Expr &offset() const { return *Offset; }
  ExprPtr clone() const override;

private:
  std::string Mem;
  ExprPtr Bank, Offset;
};

/// Function application.
class AppExpr final : public Expr {
public:
  AppExpr(std::string Callee, std::vector<ExprPtr> Args, SourceLoc Loc)
      : Expr(ExprKind::App, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::App; }

  const std::string &callee() const { return Callee; }
  const std::vector<ExprPtr> &args() const { return Args; }
  ExprPtr clone() const override;

private:
  std::string Callee;
  std::vector<ExprPtr> Args;
};

//===----------------------------------------------------------------------===//
// Commands
//===----------------------------------------------------------------------===//

/// Discriminator for \c Cmd.
enum class CmdKind {
  Let,
  View,
  If,
  While,
  For,
  Assign,       ///< x := e
  ReduceAssign, ///< x += e (and -=, *=, /=): reducer in combine blocks,
                ///< sugar for x := x op e elsewhere.
  Store,        ///< A[e...] := e or A{b}[i] := e
  Expr,         ///< Bare expression in statement position.
  Seq,          ///< Ordered composition: c1 --- c2 --- ...
  Par,          ///< Unordered composition: c1 ; c2 ; ...
  Block,        ///< { c } introduces a scope.
  Skip,
};

class Cmd;
using CmdPtr = std::unique_ptr<Cmd>;

/// Base class for commands.
class Cmd {
public:
  virtual ~Cmd() = default;

  CmdKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

  template <typename T> T *as() {
    return T::classof(this) ? static_cast<T *>(this) : nullptr;
  }
  template <typename T> const T *as() const {
    return T::classof(this) ? static_cast<const T *>(this) : nullptr;
  }

  /// Deep copy (used by desugaring to duplicate unrolled bodies).
  virtual CmdPtr clone() const = 0;

protected:
  Cmd(CmdKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}

private:
  CmdKind Kind;
  SourceLoc Loc;
};

/// let x [: T] [= e]. Declares either a local value (wires/registers) or,
/// when T is a memory type and there is no initializer, a memory (BRAM).
class LetCmd final : public Cmd {
public:
  LetCmd(std::string Name, TypeRef DeclType, ExprPtr Init, SourceLoc Loc)
      : Cmd(CmdKind::Let, Loc), Name(std::move(Name)),
        DeclType(std::move(DeclType)), Init(std::move(Init)) {}
  static bool classof(const Cmd *C) { return C->kind() == CmdKind::Let; }

  const std::string &name() const { return Name; }
  const TypeRef &declType() const { return DeclType; } ///< May be null.
  const Expr *init() const { return Init.get(); }      ///< May be null.
  Expr *init() { return Init.get(); }
  CmdPtr clone() const override;

private:
  std::string Name;
  TypeRef DeclType;
  ExprPtr Init;
};

/// The four view kinds of Section 3.6.
enum class ViewKind { Shrink, Suffix, Shift, Split };

/// Surface spelling of \p Kind ("shrink", ...).
const char *viewKindName(ViewKind Kind);

/// Per-dimension parameter of a view declaration: a literal factor for
/// shrink/split, an offset expression for suffix/shift.
struct ViewDimParam {
  int64_t Factor = 0; ///< shrink/split factor.
  ExprPtr Offset;     ///< suffix/shift offset expression.

  ViewDimParam clone() const;
};

/// view v = <kind> M[by p1][by p2]...
class ViewCmd final : public Cmd {
public:
  ViewCmd(std::string Name, ViewKind VK, std::string Mem,
          std::vector<ViewDimParam> Params, SourceLoc Loc)
      : Cmd(CmdKind::View, Loc), Name(std::move(Name)), VK(VK),
        Mem(std::move(Mem)), Params(std::move(Params)) {}
  static bool classof(const Cmd *C) { return C->kind() == CmdKind::View; }

  const std::string &name() const { return Name; }
  ViewKind viewKind() const { return VK; }
  const std::string &mem() const { return Mem; }
  const std::vector<ViewDimParam> &params() const { return Params; }
  CmdPtr clone() const override;

private:
  std::string Name;
  ViewKind VK;
  std::string Mem;
  std::vector<ViewDimParam> Params;
};

/// if (e) c1 [else c2]
class IfCmd final : public Cmd {
public:
  IfCmd(ExprPtr Cond, CmdPtr Then, CmdPtr Else, SourceLoc Loc)
      : Cmd(CmdKind::If, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}
  static bool classof(const Cmd *C) { return C->kind() == CmdKind::If; }

  const Expr &cond() const { return *Cond; }
  Expr &cond() { return *Cond; }
  const Cmd &thenCmd() const { return *Then; }
  Cmd &thenCmd() { return *Then; }
  const Cmd *elseCmd() const { return Else.get(); } ///< May be null.
  Cmd *elseCmd() { return Else.get(); }
  CmdPtr clone() const override;

private:
  ExprPtr Cond;
  CmdPtr Then, Else;
};

/// while (e) c — sequential iteration, never parallelized.
class WhileCmd final : public Cmd {
public:
  WhileCmd(ExprPtr Cond, CmdPtr Body, SourceLoc Loc)
      : Cmd(CmdKind::While, Loc), Cond(std::move(Cond)), Body(std::move(Body)) {
  }
  static bool classof(const Cmd *C) { return C->kind() == CmdKind::While; }

  const Expr &cond() const { return *Cond; }
  Expr &cond() { return *Cond; }
  const Cmd &body() const { return *Body; }
  Cmd &body() { return *Body; }
  CmdPtr clone() const override;

private:
  ExprPtr Cond;
  CmdPtr Body;
};

/// for (let i = lo..hi) [unroll k] { body } [combine { reduce }]
///
/// A doall loop: cross-iteration dependencies are illegal in the body;
/// reductions go in the combine block (Section 3.5).
class ForCmd final : public Cmd {
public:
  ForCmd(std::string Iter, int64_t Lo, int64_t Hi, int64_t Unroll, CmdPtr Body,
         CmdPtr Combine, SourceLoc Loc)
      : Cmd(CmdKind::For, Loc), Iter(std::move(Iter)), Lo(Lo), Hi(Hi),
        Unroll(Unroll), Body(std::move(Body)), Combine(std::move(Combine)) {}
  static bool classof(const Cmd *C) { return C->kind() == CmdKind::For; }

  const std::string &iter() const { return Iter; }
  int64_t lo() const { return Lo; }
  int64_t hi() const { return Hi; }
  int64_t unroll() const { return Unroll; }
  /// Rewrites the unroll factor in place. Used by the compile service's
  /// session layer to re-check bank/unroll variants of a cached parse
  /// without re-parsing.
  void setUnroll(int64_t U) { Unroll = U; }
  const Cmd &body() const { return *Body; }
  Cmd &body() { return *Body; }
  const Cmd *combine() const { return Combine.get(); } ///< May be null.
  Cmd *combine() { return Combine.get(); }
  CmdPtr clone() const override;

private:
  std::string Iter;
  int64_t Lo, Hi, Unroll;
  CmdPtr Body, Combine;
};

/// x := e
class AssignCmd final : public Cmd {
public:
  AssignCmd(std::string Name, ExprPtr Value, SourceLoc Loc)
      : Cmd(CmdKind::Assign, Loc), Name(std::move(Name)),
        Value(std::move(Value)) {}
  static bool classof(const Cmd *C) { return C->kind() == CmdKind::Assign; }

  const std::string &name() const { return Name; }
  const Expr &value() const { return *Value; }
  Expr &value() { return *Value; }
  CmdPtr clone() const override;

private:
  std::string Name;
  ExprPtr Value;
};

/// x op= e where op in {+, -, *, /}. Inside a combine block this is a
/// reducer applied to the combine register for x's producers; elsewhere it
/// is sugar for x := x op e.
class ReduceAssignCmd final : public Cmd {
public:
  ReduceAssignCmd(BinOpKind Op, std::string Name, ExprPtr Value, SourceLoc Loc)
      : Cmd(CmdKind::ReduceAssign, Loc), Op(Op), Name(std::move(Name)),
        Value(std::move(Value)) {}
  static bool classof(const Cmd *C) {
    return C->kind() == CmdKind::ReduceAssign;
  }

  BinOpKind op() const { return Op; }
  const std::string &name() const { return Name; }
  const Expr &value() const { return *Value; }
  Expr &value() { return *Value; }
  CmdPtr clone() const override;

private:
  BinOpKind Op;
  std::string Name;
  ExprPtr Value;
};

/// Target := e where Target is an Access or PhysAccess expression.
class StoreCmd final : public Cmd {
public:
  StoreCmd(ExprPtr Target, ExprPtr Value, SourceLoc Loc)
      : Cmd(CmdKind::Store, Loc), Target(std::move(Target)),
        Value(std::move(Value)) {}
  static bool classof(const Cmd *C) { return C->kind() == CmdKind::Store; }

  const Expr &target() const { return *Target; }
  Expr &target() { return *Target; }
  const Expr &value() const { return *Value; }
  Expr &value() { return *Value; }
  CmdPtr clone() const override;

private:
  ExprPtr Target, Value;
};

/// Bare expression in statement position (e.g. a call, or a read whose
/// value is discarded).
class ExprCmd final : public Cmd {
public:
  ExprCmd(ExprPtr E, SourceLoc Loc)
      : Cmd(CmdKind::Expr, Loc), E(std::move(E)) {}
  static bool classof(const Cmd *C) { return C->kind() == CmdKind::Expr; }

  const Expr &expr() const { return *E; }
  Expr &expr() { return *E; }
  CmdPtr clone() const override;

private:
  ExprPtr E;
};

/// Ordered composition c1 --- c2 --- ... Each element runs in its own
/// logical time step; affine resources are restored between steps.
class SeqCmd final : public Cmd {
public:
  SeqCmd(std::vector<CmdPtr> Cmds, SourceLoc Loc)
      : Cmd(CmdKind::Seq, Loc), Cmds(std::move(Cmds)) {}
  static bool classof(const Cmd *C) { return C->kind() == CmdKind::Seq; }

  const std::vector<CmdPtr> &cmds() const { return Cmds; }
  std::vector<CmdPtr> &cmds() { return Cmds; }
  CmdPtr clone() const override;

private:
  std::vector<CmdPtr> Cmds;
};

/// Unordered composition c1 ; c2 ; ... The compiler may reorder or run the
/// elements in parallel; they share one logical time step's resources.
class ParCmd final : public Cmd {
public:
  ParCmd(std::vector<CmdPtr> Cmds, SourceLoc Loc)
      : Cmd(CmdKind::Par, Loc), Cmds(std::move(Cmds)) {}
  static bool classof(const Cmd *C) { return C->kind() == CmdKind::Par; }

  const std::vector<CmdPtr> &cmds() const { return Cmds; }
  std::vector<CmdPtr> &cmds() { return Cmds; }
  CmdPtr clone() const override;

private:
  std::vector<CmdPtr> Cmds;
};

/// { c } — scope boundary.
class BlockCmd final : public Cmd {
public:
  BlockCmd(CmdPtr Body, SourceLoc Loc)
      : Cmd(CmdKind::Block, Loc), Body(std::move(Body)) {}
  static bool classof(const Cmd *C) { return C->kind() == CmdKind::Block; }

  const Cmd &body() const { return *Body; }
  Cmd &body() { return *Body; }
  CmdPtr clone() const override;

private:
  CmdPtr Body;
};

/// No-op.
class SkipCmd final : public Cmd {
public:
  explicit SkipCmd(SourceLoc Loc) : Cmd(CmdKind::Skip, Loc) {}
  static bool classof(const Cmd *C) { return C->kind() == CmdKind::Skip; }
  CmdPtr clone() const override;
};

//===----------------------------------------------------------------------===//
// Programs
//===----------------------------------------------------------------------===//

/// One formal parameter of a function definition.
struct FuncParam {
  std::string Name;
  TypeRef Ty;
};

/// def f(x: T, ...) [: R] { body }
struct FuncDef {
  std::string Name;
  std::vector<FuncParam> Params;
  TypeRef RetTy; ///< Void when omitted.
  CmdPtr Body;
  SourceLoc Loc;
};

/// decl X: T; — an interface memory supplied by the caller/testbench.
struct ExternDecl {
  std::string Name;
  TypeRef Ty;
  SourceLoc Loc;
};

/// A whole Dahlia program: function definitions, interface memories, and
/// the kernel body.
struct Program {
  std::vector<FuncDef> Funcs;
  std::vector<ExternDecl> Decls;
  CmdPtr Body;

  /// Deep copy. The compile service's session layer keeps one pristine
  /// parsed program per session and clones it per re-check, since type
  /// checking annotates expression types in place.
  Program clone() const;
};

} // namespace dahlia

#endif // DAHLIA_AST_AST_H
