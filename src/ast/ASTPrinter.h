//===- ASTPrinter.h - Dahlia pretty printer ---------------------*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders ASTs back into Dahlia surface syntax. The printer output
/// re-parses to an equivalent AST (checked by round-trip tests).
///
//===----------------------------------------------------------------------===//

#ifndef DAHLIA_AST_ASTPRINTER_H
#define DAHLIA_AST_ASTPRINTER_H

#include "ast/AST.h"

#include <string>

namespace dahlia {

/// Renders \p E in surface syntax.
std::string printExpr(const Expr &E);

/// Renders \p C in surface syntax, indented by \p Indent levels.
std::string printCmd(const Cmd &C, unsigned Indent = 0);

/// Renders a whole program.
std::string printProgram(const Program &P);

} // namespace dahlia

#endif // DAHLIA_AST_ASTPRINTER_H
