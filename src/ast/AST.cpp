//===- AST.cpp - Dahlia surface AST -----------------------------*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "ast/AST.h"

using namespace dahlia;

const char *dahlia::binOpSpelling(BinOpKind Op) {
  switch (Op) {
  case BinOpKind::Add:
    return "+";
  case BinOpKind::Sub:
    return "-";
  case BinOpKind::Mul:
    return "*";
  case BinOpKind::Div:
    return "/";
  case BinOpKind::Mod:
    return "%";
  case BinOpKind::Eq:
    return "==";
  case BinOpKind::Neq:
    return "!=";
  case BinOpKind::Lt:
    return "<";
  case BinOpKind::Gt:
    return ">";
  case BinOpKind::Le:
    return "<=";
  case BinOpKind::Ge:
    return ">=";
  case BinOpKind::And:
    return "&&";
  case BinOpKind::Or:
    return "||";
  }
  return "?";
}

bool dahlia::isComparison(BinOpKind Op) {
  switch (Op) {
  case BinOpKind::Eq:
  case BinOpKind::Neq:
  case BinOpKind::Lt:
  case BinOpKind::Gt:
  case BinOpKind::Le:
  case BinOpKind::Ge:
    return true;
  default:
    return false;
  }
}

bool dahlia::isLogical(BinOpKind Op) {
  return Op == BinOpKind::And || Op == BinOpKind::Or;
}

const char *dahlia::viewKindName(ViewKind Kind) {
  switch (Kind) {
  case ViewKind::Shrink:
    return "shrink";
  case ViewKind::Suffix:
    return "suffix";
  case ViewKind::Shift:
    return "shift";
  case ViewKind::Split:
    return "split";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Expression cloning
//===----------------------------------------------------------------------===//

ExprPtr IntLitExpr::clone() const {
  return std::make_unique<IntLitExpr>(Value, loc());
}

ExprPtr FloatLitExpr::clone() const {
  return std::make_unique<FloatLitExpr>(Value, loc());
}

ExprPtr BoolLitExpr::clone() const {
  return std::make_unique<BoolLitExpr>(Value, loc());
}

ExprPtr VarExpr::clone() const {
  return std::make_unique<VarExpr>(Name, loc());
}

ExprPtr BinOpExpr::clone() const {
  return std::make_unique<BinOpExpr>(Op, LHS->clone(), RHS->clone(), loc());
}

ExprPtr AccessExpr::clone() const {
  std::vector<ExprPtr> Idx;
  Idx.reserve(Indices.size());
  for (const ExprPtr &E : Indices)
    Idx.push_back(E->clone());
  return std::make_unique<AccessExpr>(Mem, std::move(Idx), loc());
}

ExprPtr PhysAccessExpr::clone() const {
  return std::make_unique<PhysAccessExpr>(Mem, Bank->clone(), Offset->clone(),
                                          loc());
}

ExprPtr AppExpr::clone() const {
  std::vector<ExprPtr> NewArgs;
  NewArgs.reserve(Args.size());
  for (const ExprPtr &E : Args)
    NewArgs.push_back(E->clone());
  return std::make_unique<AppExpr>(Callee, std::move(NewArgs), loc());
}

//===----------------------------------------------------------------------===//
// Command cloning
//===----------------------------------------------------------------------===//

ViewDimParam ViewDimParam::clone() const {
  ViewDimParam P;
  P.Factor = Factor;
  if (Offset)
    P.Offset = Offset->clone();
  return P;
}

CmdPtr LetCmd::clone() const {
  return std::make_unique<LetCmd>(Name, DeclType,
                                  Init ? Init->clone() : nullptr, loc());
}

CmdPtr ViewCmd::clone() const {
  std::vector<ViewDimParam> NewParams;
  NewParams.reserve(Params.size());
  for (const ViewDimParam &P : Params)
    NewParams.push_back(P.clone());
  return std::make_unique<ViewCmd>(Name, VK, Mem, std::move(NewParams), loc());
}

CmdPtr IfCmd::clone() const {
  return std::make_unique<IfCmd>(Cond->clone(), Then->clone(),
                                 Else ? Else->clone() : nullptr, loc());
}

CmdPtr WhileCmd::clone() const {
  return std::make_unique<WhileCmd>(Cond->clone(), Body->clone(), loc());
}

CmdPtr ForCmd::clone() const {
  return std::make_unique<ForCmd>(Iter, Lo, Hi, Unroll, Body->clone(),
                                  Combine ? Combine->clone() : nullptr, loc());
}

CmdPtr AssignCmd::clone() const {
  return std::make_unique<AssignCmd>(Name, Value->clone(), loc());
}

CmdPtr ReduceAssignCmd::clone() const {
  return std::make_unique<ReduceAssignCmd>(Op, Name, Value->clone(), loc());
}

CmdPtr StoreCmd::clone() const {
  return std::make_unique<StoreCmd>(Target->clone(), Value->clone(), loc());
}

CmdPtr ExprCmd::clone() const {
  return std::make_unique<ExprCmd>(E->clone(), loc());
}

CmdPtr SeqCmd::clone() const {
  std::vector<CmdPtr> NewCmds;
  NewCmds.reserve(Cmds.size());
  for (const CmdPtr &C : Cmds)
    NewCmds.push_back(C->clone());
  return std::make_unique<SeqCmd>(std::move(NewCmds), loc());
}

CmdPtr ParCmd::clone() const {
  std::vector<CmdPtr> NewCmds;
  NewCmds.reserve(Cmds.size());
  for (const CmdPtr &C : Cmds)
    NewCmds.push_back(C->clone());
  return std::make_unique<ParCmd>(std::move(NewCmds), loc());
}

CmdPtr BlockCmd::clone() const {
  return std::make_unique<BlockCmd>(Body->clone(), loc());
}

CmdPtr SkipCmd::clone() const { return std::make_unique<SkipCmd>(loc()); }

Program Program::clone() const {
  Program P;
  P.Funcs.reserve(Funcs.size());
  for (const FuncDef &F : Funcs) {
    FuncDef NF;
    NF.Name = F.Name;
    NF.Params = F.Params; // TypeRef is shared; FuncParam copies are cheap.
    NF.RetTy = F.RetTy;
    NF.Body = F.Body ? F.Body->clone() : nullptr;
    NF.Loc = F.Loc;
    P.Funcs.push_back(std::move(NF));
  }
  P.Decls = Decls; // Types are immutable and shared.
  P.Body = Body ? Body->clone() : nullptr;
  return P;
}
