//===- ASTPrinter.cpp - Dahlia pretty printer -------------------*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "ast/ASTPrinter.h"

#include <sstream>

using namespace dahlia;

namespace {

/// Stateful printer accumulating into a string stream.
class Printer {
public:
  std::string exprStr(const Expr &E) {
    printExprNode(E);
    return take();
  }

  std::string cmdStr(const Cmd &C, unsigned Indent) {
    Level = Indent;
    printCmdNode(C);
    return take();
  }

  std::string programStr(const Program &P) {
    for (const FuncDef &F : P.Funcs) {
      OS << "def " << F.Name << '(';
      for (size_t I = 0; I != F.Params.size(); ++I) {
        if (I != 0)
          OS << ", ";
        OS << F.Params[I].Name << ": " << F.Params[I].Ty->str();
      }
      OS << ')';
      if (F.RetTy && !F.RetTy->isVoid())
        OS << ": " << F.RetTy->str();
      OS << " {\n";
      ++Level;
      printCmdNode(*F.Body);
      OS << '\n';
      --Level;
      OS << "}\n";
    }
    for (const ExternDecl &D : P.Decls)
      OS << "decl " << D.Name << ": " << D.Ty->str() << ";\n";
    if (P.Body) {
      printCmdNode(*P.Body);
      OS << '\n';
    }
    return take();
  }

private:
  std::ostringstream OS;
  unsigned Level = 0;

  std::string take() { return OS.str(); }

  void indent() {
    for (unsigned I = 0; I != Level; ++I)
      OS << "  ";
  }

  /// Prints a structured-statement body, unwrapping one block layer so the
  /// printed braces do not stack on re-parse.
  void printBody(const Cmd &C) {
    if (const auto *B = C.as<BlockCmd>()) {
      printCmdNode(B->body());
      return;
    }
    printCmdNode(C);
  }

  void printExprNode(const Expr &E) {
    switch (E.kind()) {
    case ExprKind::IntLit:
      OS << E.as<IntLitExpr>()->value();
      return;
    case ExprKind::FloatLit: {
      std::ostringstream Tmp;
      Tmp << E.as<FloatLitExpr>()->value();
      std::string S = Tmp.str();
      // Ensure the literal re-lexes as a float.
      if (S.find('.') == std::string::npos &&
          S.find('e') == std::string::npos)
        S += ".0";
      OS << S;
      return;
    }
    case ExprKind::BoolLit:
      OS << (E.as<BoolLitExpr>()->value() ? "true" : "false");
      return;
    case ExprKind::Var:
      OS << E.as<VarExpr>()->name();
      return;
    case ExprKind::BinOp: {
      const auto &B = *E.as<BinOpExpr>();
      OS << '(';
      printExprNode(B.lhs());
      OS << ' ' << binOpSpelling(B.op()) << ' ';
      printExprNode(B.rhs());
      OS << ')';
      return;
    }
    case ExprKind::Access: {
      const auto &A = *E.as<AccessExpr>();
      OS << A.mem();
      for (const ExprPtr &I : A.indices()) {
        OS << '[';
        printExprNode(*I);
        OS << ']';
      }
      return;
    }
    case ExprKind::PhysAccess: {
      const auto &A = *E.as<PhysAccessExpr>();
      OS << A.mem() << '{';
      printExprNode(A.bank());
      OS << "}[";
      printExprNode(A.offset());
      OS << ']';
      return;
    }
    case ExprKind::App: {
      const auto &A = *E.as<AppExpr>();
      OS << A.callee() << '(';
      for (size_t I = 0; I != A.args().size(); ++I) {
        if (I != 0)
          OS << ", ";
        printExprNode(*A.args()[I]);
      }
      OS << ')';
      return;
    }
    }
  }

  void printCmdNode(const Cmd &C) {
    switch (C.kind()) {
    case CmdKind::Let: {
      const auto &L = *C.as<LetCmd>();
      indent();
      OS << "let " << L.name();
      if (L.declType())
        OS << ": " << L.declType()->str();
      if (L.init()) {
        OS << " = ";
        printExprNode(*L.init());
      }
      OS << ';';
      return;
    }
    case CmdKind::View: {
      const auto &V = *C.as<ViewCmd>();
      indent();
      OS << "view " << V.name() << " = " << viewKindName(V.viewKind()) << ' '
         << V.mem();
      for (const ViewDimParam &P : V.params()) {
        OS << "[by ";
        if (P.Offset)
          printExprNode(*P.Offset);
        else
          OS << P.Factor;
        OS << ']';
      }
      OS << ';';
      return;
    }
    case CmdKind::If: {
      const auto &I = *C.as<IfCmd>();
      indent();
      OS << "if (";
      printExprNode(I.cond());
      OS << ") {\n";
      ++Level;
      printBody(I.thenCmd());
      OS << '\n';
      --Level;
      indent();
      OS << '}';
      if (I.elseCmd()) {
        OS << " else {\n";
        ++Level;
        printBody(*I.elseCmd());
        OS << '\n';
        --Level;
        indent();
        OS << '}';
      }
      return;
    }
    case CmdKind::While: {
      const auto &W = *C.as<WhileCmd>();
      indent();
      OS << "while (";
      printExprNode(W.cond());
      OS << ") {\n";
      ++Level;
      printBody(W.body());
      OS << '\n';
      --Level;
      indent();
      OS << '}';
      return;
    }
    case CmdKind::For: {
      const auto &F = *C.as<ForCmd>();
      indent();
      OS << "for (let " << F.iter() << " = " << F.lo() << ".." << F.hi()
         << ')';
      if (F.unroll() != 1)
        OS << " unroll " << F.unroll();
      OS << " {\n";
      ++Level;
      printBody(F.body());
      OS << '\n';
      --Level;
      indent();
      OS << '}';
      if (F.combine()) {
        OS << " combine {\n";
        ++Level;
        printBody(*F.combine());
        OS << '\n';
        --Level;
        indent();
        OS << '}';
      }
      return;
    }
    case CmdKind::Assign: {
      const auto &A = *C.as<AssignCmd>();
      indent();
      OS << A.name() << " := ";
      printExprNode(A.value());
      OS << ';';
      return;
    }
    case CmdKind::ReduceAssign: {
      const auto &R = *C.as<ReduceAssignCmd>();
      indent();
      OS << R.name() << ' ' << binOpSpelling(R.op()) << "= ";
      printExprNode(R.value());
      OS << ';';
      return;
    }
    case CmdKind::Store: {
      const auto &S = *C.as<StoreCmd>();
      indent();
      printExprNode(S.target());
      OS << " := ";
      printExprNode(S.value());
      OS << ';';
      return;
    }
    case CmdKind::Expr: {
      indent();
      printExprNode(C.as<ExprCmd>()->expr());
      OS << ';';
      return;
    }
    case CmdKind::Seq: {
      const auto &S = *C.as<SeqCmd>();
      for (size_t I = 0; I != S.cmds().size(); ++I) {
        if (I != 0) {
          OS << '\n';
          indent();
          OS << "---\n";
        }
        printCmdNode(*S.cmds()[I]);
      }
      return;
    }
    case CmdKind::Par: {
      const auto &P = *C.as<ParCmd>();
      for (size_t I = 0; I != P.cmds().size(); ++I) {
        if (I != 0)
          OS << '\n';
        printCmdNode(*P.cmds()[I]);
      }
      return;
    }
    case CmdKind::Block: {
      indent();
      OS << "{\n";
      ++Level;
      printCmdNode(C.as<BlockCmd>()->body());
      OS << '\n';
      --Level;
      indent();
      OS << '}';
      return;
    }
    case CmdKind::Skip:
      indent();
      OS << "skip;";
      return;
    }
  }
};

} // namespace

std::string dahlia::printExpr(const Expr &E) { return Printer().exprStr(E); }

std::string dahlia::printCmd(const Cmd &C, unsigned Indent) {
  return Printer().cmdStr(C, Indent);
}

std::string dahlia::printProgram(const Program &P) {
  return Printer().programStr(P);
}
