//===- Type.h - Dahlia surface types ----------------------------*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Types of the Dahlia surface language (Section 3 of the paper):
///
///   * scalar value types: bool, float, double, bit<n>, ubit<n>;
///   * index types idx{l..h} given to unrolled loop iterators, encoding the
///     set of bank offsets an access through the iterator touches;
///   * memory types mem t[n1 bank m1][n2 bank m2]...{k ports}, the affine
///     resources of the type system.
///
/// Types are immutable and shared via \c TypeRef.
///
//===----------------------------------------------------------------------===//

#ifndef DAHLIA_AST_TYPE_H
#define DAHLIA_AST_TYPE_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dahlia {

class Type;
using TypeRef = std::shared_ptr<const Type>;

/// Discriminator for \c Type.
enum class TypeKind {
  Bool,
  Float,
  Double,
  Bit,   ///< bit<n> (signed) or ubit<n> (unsigned).
  Idx,   ///< Index type for unrolled loop iterators.
  Mem,   ///< Banked memory; the affine resource of the system.
  Void,  ///< Result of commands / functions without a return value.
};

/// One dimension of a memory type: \c Size elements split round-robin into
/// \c Banks equally sized banks. The checker requires Banks to divide Size
/// (Section 3.3: "the banking factor m must evenly divide the size n").
struct MemDim {
  int64_t Size = 0;
  int64_t Banks = 1;

  bool operator==(const MemDim &RHS) const = default;
};

/// An immutable Dahlia type.
class Type {
public:
  // Factories -----------------------------------------------------------

  static TypeRef getBool();
  static TypeRef getFloat();
  static TypeRef getDouble();
  static TypeRef getVoid();
  /// bit<Width> when \p IsSigned, ubit<Width> otherwise.
  static TypeRef getBit(unsigned Width, bool IsSigned = true);
  /// Index type idx{Lo..Hi} with dynamic range [DynLo, DynHi). Accessing a
  /// banked dimension with an iterator of this type touches banks
  /// {u mod B : u in [Lo, Hi)}.
  static TypeRef getIdx(int64_t Lo, int64_t Hi, int64_t DynLo = 0,
                        int64_t DynHi = 0);
  /// Memory of \p Elem elements with the given dimensions and read/write
  /// \p Ports per bank.
  static TypeRef getMem(TypeRef Elem, std::vector<MemDim> Dims,
                        unsigned Ports = 1);

  // Observers ------------------------------------------------------------

  TypeKind kind() const { return Kind; }
  bool isBool() const { return Kind == TypeKind::Bool; }
  bool isFloat() const { return Kind == TypeKind::Float; }
  bool isDouble() const { return Kind == TypeKind::Double; }
  bool isBit() const { return Kind == TypeKind::Bit; }
  bool isIdx() const { return Kind == TypeKind::Idx; }
  bool isMem() const { return Kind == TypeKind::Mem; }
  bool isVoid() const { return Kind == TypeKind::Void; }
  /// Scalar numeric types that participate in arithmetic.
  bool isNumeric() const {
    return Kind == TypeKind::Float || Kind == TypeKind::Double ||
           Kind == TypeKind::Bit || Kind == TypeKind::Idx;
  }

  // Bit accessors.
  unsigned bitWidth() const {
    assert(isBit() && "not a bit type");
    return Width;
  }
  bool isSignedBit() const {
    assert(isBit() && "not a bit type");
    return Signed;
  }

  // Idx accessors.
  int64_t idxLo() const {
    assert(isIdx() && "not an idx type");
    return Lo;
  }
  int64_t idxHi() const {
    assert(isIdx() && "not an idx type");
    return Hi;
  }
  int64_t idxDynLo() const {
    assert(isIdx() && "not an idx type");
    return DynLo;
  }
  int64_t idxDynHi() const {
    assert(isIdx() && "not an idx type");
    return DynHi;
  }

  // Mem accessors.
  const TypeRef &memElem() const {
    assert(isMem() && "not a memory type");
    return Elem;
  }
  const std::vector<MemDim> &memDims() const {
    assert(isMem() && "not a memory type");
    return Dims;
  }
  unsigned memPorts() const {
    assert(isMem() && "not a memory type");
    return Ports;
  }
  /// Product of per-dimension bank counts (flattened bank id space).
  int64_t memTotalBanks() const;
  /// Product of per-dimension sizes.
  int64_t memTotalSize() const;

  /// Structural equality.
  bool equals(const Type &RHS) const;

  /// Whether a value of type \p From can be used where \c this is expected
  /// (idx types widen to bit/float; bit widths widen; bit -> float is
  /// permitted, matching Dahlia's lenient numeric subtyping).
  bool accepts(const Type &From) const;

  /// Renders in surface syntax, e.g. "float[8 bank 4]" or "ubit<32>".
  std::string str() const;

private:
  explicit Type(TypeKind Kind) : Kind(Kind) {}

  TypeKind Kind;
  // Bit.
  unsigned Width = 0;
  bool Signed = true;
  // Idx.
  int64_t Lo = 0, Hi = 0, DynLo = 0, DynHi = 0;
  // Mem.
  TypeRef Elem;
  std::vector<MemDim> Dims;
  unsigned Ports = 1;
};

} // namespace dahlia

#endif // DAHLIA_AST_TYPE_H
