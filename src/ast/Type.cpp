//===- Type.cpp - Dahlia surface types --------------------------*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "ast/Type.h"

#include <sstream>

using namespace dahlia;

TypeRef Type::getBool() {
  static TypeRef T(new Type(TypeKind::Bool));
  return T;
}

TypeRef Type::getFloat() {
  static TypeRef T(new Type(TypeKind::Float));
  return T;
}

TypeRef Type::getDouble() {
  static TypeRef T(new Type(TypeKind::Double));
  return T;
}

TypeRef Type::getVoid() {
  static TypeRef T(new Type(TypeKind::Void));
  return T;
}

TypeRef Type::getBit(unsigned Width, bool IsSigned) {
  auto *T = new Type(TypeKind::Bit);
  T->Width = Width;
  T->Signed = IsSigned;
  return TypeRef(T);
}

TypeRef Type::getIdx(int64_t Lo, int64_t Hi, int64_t DynLo, int64_t DynHi) {
  assert(Lo <= Hi && "idx static interval inverted");
  auto *T = new Type(TypeKind::Idx);
  T->Lo = Lo;
  T->Hi = Hi;
  T->DynLo = DynLo;
  T->DynHi = DynHi;
  return TypeRef(T);
}

TypeRef Type::getMem(TypeRef Elem, std::vector<MemDim> Dims, unsigned Ports) {
  assert(Elem && !Elem->isMem() && "memories of memories are not allowed");
  assert(!Dims.empty() && "memory needs at least one dimension");
  auto *T = new Type(TypeKind::Mem);
  T->Elem = std::move(Elem);
  T->Dims = std::move(Dims);
  T->Ports = Ports;
  return TypeRef(T);
}

int64_t Type::memTotalBanks() const {
  assert(isMem() && "not a memory type");
  int64_t Total = 1;
  for (const MemDim &D : Dims)
    Total *= D.Banks;
  return Total;
}

int64_t Type::memTotalSize() const {
  assert(isMem() && "not a memory type");
  int64_t Total = 1;
  for (const MemDim &D : Dims)
    Total *= D.Size;
  return Total;
}

bool Type::equals(const Type &RHS) const {
  if (Kind != RHS.Kind)
    return false;
  switch (Kind) {
  case TypeKind::Bool:
  case TypeKind::Float:
  case TypeKind::Double:
  case TypeKind::Void:
    return true;
  case TypeKind::Bit:
    return Width == RHS.Width && Signed == RHS.Signed;
  case TypeKind::Idx:
    return Lo == RHS.Lo && Hi == RHS.Hi && DynLo == RHS.DynLo &&
           DynHi == RHS.DynHi;
  case TypeKind::Mem:
    return Ports == RHS.Ports && Dims == RHS.Dims &&
           Elem->equals(*RHS.Elem);
  }
  return false;
}

bool Type::accepts(const Type &From) const {
  if (equals(From))
    return true;
  switch (Kind) {
  case TypeKind::Bit:
    // Any integer-ish value fits in a bit type: idx iterators and other bit
    // widths (Dahlia widens implicitly; we accept and let the backend pick
    // widths).
    return From.isIdx() || From.isBit();
  case TypeKind::Float:
    return From.isBit() || From.isIdx();
  case TypeKind::Double:
    return From.isBit() || From.isIdx() || From.isFloat();
  case TypeKind::Idx:
    // idx types are created by the checker only; nothing converts *to* them.
    return false;
  default:
    return false;
  }
}

std::string Type::str() const {
  std::ostringstream OS;
  switch (Kind) {
  case TypeKind::Bool:
    return "bool";
  case TypeKind::Float:
    return "float";
  case TypeKind::Double:
    return "double";
  case TypeKind::Void:
    return "void";
  case TypeKind::Bit:
    OS << (Signed ? "bit" : "ubit") << '<' << Width << '>';
    return OS.str();
  case TypeKind::Idx:
    OS << "idx{" << Lo << ".." << Hi << '}';
    return OS.str();
  case TypeKind::Mem:
    OS << Elem->str();
    if (Ports != 1)
      OS << '{' << Ports << '}';
    for (const MemDim &D : Dims) {
      OS << '[' << D.Size;
      if (D.Banks != 1)
        OS << " bank " << D.Banks;
      OS << ']';
    }
    return OS.str();
  }
  return "<invalid>";
}
