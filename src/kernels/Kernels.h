//===- Kernels.h - Benchmark kernels of the evaluation ----------*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark kernels of Section 5 and the appendices, in two parallel
/// representations:
///
///  * parameterized *Dahlia source generators* — the real type checker
///    decides which configurations of each design space are accepted
///    (Sections 5.2/5.3);
///  * *hlsim kernel specs* — the HLS estimation substrate produces
///    latency/LUT/FF/BRAM/DSP numbers for any configuration, accepted or
///    not (standing in for Vivado HLS estimation mode).
///
//===----------------------------------------------------------------------===//

#ifndef DAHLIA_KERNELS_KERNELS_H
#define DAHLIA_KERNELS_KERNELS_H

#include "dse/DseEngine.h"
#include "hlsim/Kernel.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dahlia::kernels {

//===----------------------------------------------------------------------===//
// Section 2 motivating kernel: 512x512 dense matrix multiply (Figure 2)
//===----------------------------------------------------------------------===//

/// Figure 4a/4b: UNROLL FACTOR=\p Unroll on the inner loop, with both
/// operand matrices cyclically partitioned by \p Partition (1 = none).
hlsim::KernelSpec gemm512(int64_t Unroll, int64_t Partition);

/// Figure 4c: banking and unrolling in lockstep.
inline hlsim::KernelSpec gemm512Lockstep(int64_t K) { return gemm512(K, K); }

//===----------------------------------------------------------------------===//
// gemm-blocked (Figure 7 / Section 5.2)
//===----------------------------------------------------------------------===//

/// The 7 exploration parameters of the Figure 10 listing: four banking
/// factors (m1/m2 share BANK11/BANK12; prod uses BANK21/BANK22) and three
/// unroll factors.
struct GemmBlockedConfig {
  int64_t Bank11 = 1, Bank12 = 1, Bank21 = 1, Bank22 = 1;
  int64_t Unroll1 = 1, Unroll2 = 1, Unroll3 = 1;
};

/// The paper's 32,000-point design space: banking 1-4, unroll {1,2,4,6,8}.
std::vector<GemmBlockedConfig> gemmBlockedSpace();

/// Parameterized Dahlia port of gemm-blocked (suffix views over the
/// blocked tiles, combine-block reduction).
std::string gemmBlockedDahlia(const GemmBlockedConfig &C);

/// hlsim model of the same configuration.
hlsim::KernelSpec gemmBlockedSpec(const GemmBlockedConfig &C);

//===----------------------------------------------------------------------===//
// stencil2d (Figure 8a)
//===----------------------------------------------------------------------===//

struct Stencil2dConfig {
  int64_t OrigBank1 = 1, OrigBank2 = 1; ///< 1..6 each.
  int64_t FilterBank1 = 1, FilterBank2 = 1; ///< 1..3 each.
  int64_t Unroll1 = 1, Unroll2 = 1; ///< 1..3 each.
};

std::vector<Stencil2dConfig> stencil2dSpace();
std::string stencil2dDahlia(const Stencil2dConfig &C);
hlsim::KernelSpec stencil2dSpec(const Stencil2dConfig &C);

//===----------------------------------------------------------------------===//
// md-knn (Figure 8b)
//===----------------------------------------------------------------------===//

struct MdKnnConfig {
  int64_t BankPos = 1, BankNlPos = 1, BankNl = 1, BankForce = 1; ///< 1..4.
  int64_t UnrollI = 1, UnrollJ = 1; ///< 1..8.
};

std::vector<MdKnnConfig> mdKnnSpace();
std::string mdKnnDahlia(const MdKnnConfig &C);
hlsim::KernelSpec mdKnnSpec(const MdKnnConfig &C);

//===----------------------------------------------------------------------===//
// md-grid (Figure 8c)
//===----------------------------------------------------------------------===//

struct MdGridConfig {
  int64_t Bank1 = 1, Bank2 = 1, Bank3 = 1; ///< 1..4, one per grid dim.
  int64_t Unroll1 = 1, Unroll2 = 1, Unroll3 = 1; ///< 1..7.
};

std::vector<MdGridConfig> mdGridSpace();
std::string mdGridDahlia(const MdGridConfig &C);
hlsim::KernelSpec mdGridSpec(const MdGridConfig &C);

//===----------------------------------------------------------------------===//
// MachSuite ports (Figure 11)
//===----------------------------------------------------------------------===//

/// One MachSuite benchmark: the baseline HLS implementation and the
/// Dahlia rewrite (both as hlsim kernel specs), plus the Dahlia source of
/// the rewrite.
struct MachSuiteBenchmark {
  std::string Name;
  hlsim::KernelSpec Baseline;
  hlsim::KernelSpec Rewrite;
  std::string DahliaSource;
  /// Completed synthesis but failed correctness checks in Vivado (the
  /// red-highlighted bars of Figure 11).
  bool MiscompiledByVivado = false;
};

/// The 16 MachSuite benchmarks of Figure 11 (backprop, fft-transpose and
/// viterbi are excluded as in the paper).
std::vector<MachSuiteBenchmark> machSuiteBenchmarks();

//===----------------------------------------------------------------------===//
// Exploration problems
//===----------------------------------------------------------------------===//
//
// Uniform index -> source / spec views of the sweep spaces above, ready
// for dse::DseEngine. The Figure 7 problem estimates rejected points too
// (the paper's exhaustive sweep); the Figure 8 problems estimate only the
// Dahlia-accepted subset (the Section 5.3 methodology).

dse::DseProblem gemmBlockedProblem(); ///< Figure 7, 32,000 configs.
dse::DseProblem stencil2dProblem();   ///< Figure 8a.
dse::DseProblem mdKnnProblem();       ///< Figure 8b.
dse::DseProblem mdGridProblem();      ///< Figure 8c.

} // namespace dahlia::kernels

#endif // DAHLIA_KERNELS_KERNELS_H
