//===- MachSuite.cpp - MachSuite ports for Figure 11 ------------*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
// The 16 MachSuite benchmarks of Figure 11 (Appendix D), each as a
// baseline HLS kernel spec and a Dahlia rewrite. Because the Dahlia
// compiler emits C++ through the same synthesis flow, rewrites are
// resource-identical except where the port restructured the code (md-knn's
// hoisted gather). Sizes follow the MachSuite default datasets.
//
//===----------------------------------------------------------------------===//

#include "kernels/Kernels.h"

using namespace dahlia::kernels;
using namespace dahlia::hlsim;

namespace {

KernelSpec serialKernel(const std::string &Name, int64_t N,
                        std::vector<ArraySpec> Arrays, unsigned Muls,
                        unsigned Adds, bool Fp = false) {
  KernelSpec K;
  K.Name = Name;
  K.FloatingPoint = Fp;
  K.MulOps = Muls;
  K.AddOps = Adds;
  K.Arrays = std::move(Arrays);
  K.Loops = {{"i", N, 1}};
  for (const ArraySpec &A : K.Arrays) {
    Access Acc;
    Acc.Array = A.Name;
    for (size_t D = 0; D != A.DimSizes.size(); ++D)
      Acc.Idx.push_back(D == 0 ? AffineExpr::var("i")
                               : AffineExpr::constant(0));
    Acc.IsWrite = &A == &K.Arrays.back();
    K.Body.push_back(std::move(Acc));
  }
  return K;
}

MachSuiteBenchmark make(const std::string &Name, KernelSpec Baseline,
                        std::string Source, bool Miscompiled = false,
                        double RewriteRuntimeFactor = 1.0) {
  MachSuiteBenchmark B;
  B.Name = Name;
  B.Rewrite = Baseline;
  B.Rewrite.Name = Name + "-rewrite";
  B.Rewrite.ExtraSerialCycles *= RewriteRuntimeFactor;
  B.Baseline = std::move(Baseline);
  B.DahliaSource = std::move(Source);
  B.MiscompiledByVivado = Miscompiled;
  return B;
}

} // namespace

std::vector<MachSuiteBenchmark> dahlia::kernels::machSuiteBenchmarks() {
  std::vector<MachSuiteBenchmark> Out;

  // aes: 256-entry S-box, 10 serial rounds over a 16-byte state.
  {
    KernelSpec K;
    K.Name = "aes";
    K.FloatingPoint = false;
    K.MulOps = 0;
    K.AddOps = 4;
    K.Arrays = {
        {"sbox", {256}, {1}, 1, 8},
        {"key", {32}, {1}, 1, 8},
        {"state", {16}, {1}, 1, 8},
    };
    K.Loops = {{"round", 10, 1}, {"byte", 16, 1}};
    K.Body = {
        {"state", {AffineExpr::var("byte")}, false},
        {"sbox", {AffineExpr::constant(0)}, false},
        {"key", {AffineExpr::constant(0)}, false},
        {"state", {AffineExpr::var("byte")}, true},
    };
    K.ExtraSerialCycles = 800;
    Out.push_back(make(
        "aes", K,
        "decl sbox: ubit<8>[256];\n"
        "decl key: ubit<8>[32];\n"
        "decl state: ubit<8>[16];\n"
        "for (let round = 0..10) {\n"
        "  for (let byte = 0..16) {\n"
        "    let s = state[byte]\n"
        "    ---\n"
        "    let sub = sbox[s]\n"
        "    ---\n"
        "    state[byte] := sub;\n"
        "  }\n"
        "}\n"));
  }

  // bfs-bulk / bfs-queue: level-synchronous traversal over CSR graph.
  for (const char *Variant : {"bfs-bulk", "bfs-queue"}) {
    KernelSpec K;
    K.Name = Variant;
    K.FloatingPoint = false;
    K.MulOps = 0;
    K.AddOps = 2;
    K.Arrays = {
        {"nodes", {512}, {1}, 1, 64},
        {"edges", {4096}, {1}, 1, 32},
        {"level", {512}, {1}, 1, 8},
    };
    K.Loops = {{"horizon", 10, 1}, {"n", 512, 1}};
    K.Body = {
        {"nodes", {AffineExpr::var("n")}, false},
        {"edges", {AffineExpr::constant(0)}, false},
        {"level", {AffineExpr::var("n")}, true},
    };
    // Port fidelity (validated against the spec by SpecValidationTest):
    // nodes carries 64-bit begin/end offset pairs, level is a narrow
    // 8-bit depth, and the CSR edge array is part of the interface. The
    // level update stays in 8-bit arithmetic; the offset read feeds the
    // edge gather.
    Out.push_back(make(
        Variant, K,
        "decl nodes: bit<64>[512];\n"
        "decl edges: bit<32>[4096];\n"
        "decl level: ubit<8>[512];\n"
        "for (let h = 0..10) {\n"
        "  for (let n = 0..512) {\n"
        "    let cur = level[n]\n"
        "    ---\n"
        "    let off = nodes[n]\n"
        "    ---\n"
        "    let e = edges[2 * n]\n"
        "    ---\n"
        "    if (cur == h) {\n"
        "      level[n] := cur + cur;\n"
        "    }\n"
        "  }\n"
        "}\n"));
  }

  // fft-strided: 1024-point FFT, log2(N) strided stages.
  {
    KernelSpec K;
    K.Name = "fft-strided";
    K.FloatingPoint = true;
    K.MulOps = 4;
    K.AddOps = 6;
    K.Arrays = {
        {"real", {1024}, {1}, 1, 64},
        {"img", {1024}, {1}, 1, 64},
        {"real_twid", {512}, {1}, 1, 64},
        {"img_twid", {512}, {1}, 1, 64},
    };
    K.Loops = {{"stage", 10, 1}, {"od", 512, 1}};
    K.Body = {
        {"real", {AffineExpr::var("od")}, false},
        {"img", {AffineExpr::var("od")}, false},
        {"real_twid", {AffineExpr::var("od")}, false},
        {"img_twid", {AffineExpr::var("od")}, false},
        {"real", {AffineExpr::var("od")}, true},
        {"img", {AffineExpr::var("od")}, true},
    };
    // Port fidelity: the interface names and double-precision widths
    // match the spec (MachSuite's fft works on doubles).
    Out.push_back(make(
        "fft-strided", K,
        "decl real: double[1024]; decl img: double[1024];\n"
        "decl real_twid: double[512]; decl img_twid: double[512];\n"
        "for (let stage = 0..10) {\n"
        "  for (let od = 0..512) {\n"
        "    let a = real[od]; let b = img[od];\n"
        "    let tw = real_twid[od]; let ti = img_twid[od]\n"
        "    ---\n"
        "    real[od] := a * tw - b * ti;\n"
        "    img[od] := a * ti + b * tw;\n"
        "  }\n"
        "}\n"));
  }

  // gemm-blocked and gemm-ncubed at their default configurations.
  Out.push_back(make("gemm-blocked", gemmBlockedSpec(GemmBlockedConfig()),
                     gemmBlockedDahlia(GemmBlockedConfig())));
  {
    KernelSpec K;
    K.Name = "gemm-ncubed";
    K.FloatingPoint = true;
    K.MulOps = 1;
    K.AddOps = 1;
    K.HasAccumulator = true;
    K.Arrays = {
        {"m1", {128, 128}, {1, 1}, 1, 32},
        {"m2", {128, 128}, {1, 1}, 1, 32},
        {"prod", {128, 128}, {1, 1}, 1, 32},
    };
    K.Loops = {{"i", 128, 1}, {"j", 128, 1}, {"k", 128, 1}};
    K.Body = {
        {"m1", {AffineExpr::var("i"), AffineExpr::var("k")}, false},
        {"m2", {AffineExpr::var("k"), AffineExpr::var("j")}, false},
        {"prod", {AffineExpr::var("i"), AffineExpr::var("j")}, true},
    };
    Out.push_back(make(
        "gemm-ncubed", K,
        "decl m1: float[128][128];\n"
        "decl m2: float[128][128];\n"
        "decl prod: float[128][128];\n"
        "for (let i = 0..128) {\n"
        "  for (let j = 0..128) {\n"
        "    let sum = 0.0;\n"
        "    {\n"
        "      for (let k = 0..128) {\n"
        "        let v = m1[i][k] * m2[k][j];\n"
        "      } combine { sum += v; }\n"
        "    }\n"
        "    ---\n"
        "    prod[i][j] := sum;\n"
        "  }\n"
        "}\n"));
  }

  // kmp: pattern matching over a 32k character stream.
  {
    KernelSpec K = serialKernel("kmp", 32411,
                                {{"input", {32411}, {1}, 1, 8},
                                 {"pattern", {4}, {1}, 1, 8},
                                 {"kmp_next", {4}, {1}, 1, 8},
                                 {"matches", {1}, {1}, 1, 32}},
                                0, 2);
    // The stream walk is a counted `while` in the port; its trip count is
    // a static bound, which the extractor now recovers (SpecValidation).
    K.Loops[0].IsWhile = true;
    // Port fidelity: the precomputed failure table is part of the
    // interface even though this simplified matcher resets q directly.
    Out.push_back(make(
        "kmp", K,
        "decl input: ubit<8>[32411];\n"
        "decl pattern: ubit<8>[4];\n"
        "decl kmp_next: ubit<8>[4];\n"
        "decl matches: bit<32>[1];\n"
        "let count = 0;\n"
        "let q = 0;\n"
        "{\n"
        "let i = 0;\n"
        "while (i < 32411) {\n"
        "  let c = input[i]\n"
        "  ---\n"
        "  let p = pattern[q]\n"
        "  ---\n"
        "  if (c == p) { q := q + 1; } else { q := 0; }\n"
        "  if (q == 4) { count := count + 1; q := 0; }\n"
        "  i := i + 1;\n"
        "}\n"
        "}\n"
        "---\n"
        "matches[0] := count;\n",
        /*Miscompiled=*/false));
  }

  // md-grid / md-knn at their default configurations.
  Out.push_back(make("md-grid", mdGridSpec(MdGridConfig()),
                     mdGridDahlia(MdGridConfig())));
  Out.push_back(make("md-knn", mdKnnSpec(MdKnnConfig()),
                     mdKnnDahlia(MdKnnConfig()),
                     /*Miscompiled=*/false,
                     /*RewriteRuntimeFactor=*/1.05));

  // nw: Needleman-Wunsch 128x128 dynamic programming.
  {
    KernelSpec K;
    K.Name = "nw";
    K.FloatingPoint = false;
    K.MulOps = 0;
    K.AddOps = 3;
    K.Arrays = {
        {"seqA", {128}, {1}, 1, 8},
        {"seqB", {128}, {1}, 1, 8},
        {"M", {129, 129}, {1, 1}, 1, 32},
    };
    K.Loops = {{"i", 128, 1}, {"j", 128, 1}};
    AffineExpr I1 = AffineExpr::var("i", 1, 1);
    AffineExpr J1 = AffineExpr::var("j", 1, 1);
    K.Body = {
        {"seqA", {AffineExpr::var("i")}, false},
        {"seqB", {AffineExpr::var("j")}, false},
        {"M", {AffineExpr::var("i"), AffineExpr::var("j")}, false},
        {"M", {I1, J1}, true},
    };
    Out.push_back(make(
        "nw", K,
        "decl seqA: ubit<8>[128];\n"
        "decl seqB: ubit<8>[128];\n"
        "decl M: bit<32>[129][129];\n"
        "for (let i = 0..128) {\n"
        "  for (let j = 0..128) {\n"
        "    let a = seqA[i]; let b = seqB[j]\n"
        "    ---\n"
        "    let diag = M[i][j]\n"
        "    ---\n"
        "    if (a == b) {\n"
        "      M[i + 1][j + 1] := diag + 1;\n"
        "    } else {\n"
        "      M[i + 1][j + 1] := diag - 1;\n"
        "    }\n"
        "  }\n"
        "}\n"));
  }

  // sort-merge / sort-radix over 2048 elements.
  {
    KernelSpec K = serialKernel("sort-merge", 2048 * 11,
                                {{"a", {2048}, {1}, 1, 32},
                                 {"temp", {2048}, {1}, 1, 32}},
                                0, 2);
    Out.push_back(make(
        "sort-merge", K,
        "decl a: bit<32>[2048];\n"
        "decl temp: bit<32>[2048];\n"
        "for (let pass = 0..11) {\n"
        "  for (let i = 0..2048) {\n"
        "    let v = a[i]\n"
        "    ---\n"
        "    temp[i] := v;\n"
        "  }\n"
        "}\n"));
  }
  {
    KernelSpec K = serialKernel("sort-radix", 2048 * 8,
                                {{"a", {2048}, {1}, 1, 32},
                                 {"b", {2048}, {1}, 1, 32},
                                 {"bucket", {2048}, {1}, 1, 32}},
                                0, 3);
    Out.push_back(make(
        "sort-radix", K,
        "decl a: bit<32>[2048];\n"
        "decl b: bit<32>[2048];\n"
        "decl bucket: bit<32>[2048];\n"
        "for (let pass = 0..8) {\n"
        "  for (let i = 0..2048) {\n"
        "    let v = a[i]\n"
        "    ---\n"
        "    bucket[i] := v % 16;\n"
        "    ---\n"
        "    let bk = bucket[i]\n"
        "    ---\n"
        "    b[i] := bk;\n"
        "  }\n"
        "}\n"));
  }

  // spmv-crs / spmv-ellpack.
  {
    KernelSpec K = serialKernel("spmv-crs", 1666,
                                {{"val", {1666}, {1}, 1, 64},
                                 {"cols", {1666}, {1}, 1, 32},
                                 {"vec", {494}, {1}, 1, 64},
                                 {"out", {494}, {1}, 1, 64}},
                                1, 1, /*Fp=*/true);
    K.HasAccumulator = true;
    // Port fidelity: the row products reduce through a combine block (the
    // spec models an accumulation chain), instead of overwriting out[0].
    Out.push_back(make(
        "spmv-crs", K,
        "decl val: double[1666];\n"
        "decl cols: bit<32>[1666];\n"
        "decl vec: double[494];\n"
        "decl out: double[494];\n"
        "let s: double = 0.0;\n"
        "{\n"
        "for (let n = 0..1666) {\n"
        "  let v = val[n]; let c = cols[n]\n"
        "  ---\n"
        "  let x = vec[c]\n"
        "  ---\n"
        "  let p = v * x;\n"
        "} combine {\n"
        "  s += p;\n"
        "}\n"
        "}\n"
        "---\n"
        "out[0] := s;\n"));
  }
  {
    KernelSpec K;
    K.Name = "spmv-ellpack";
    K.FloatingPoint = true;
    K.MulOps = 1;
    K.AddOps = 1;
    K.HasAccumulator = true;
    K.Arrays = {
        {"nzval", {494, 10}, {1, 1}, 1, 64},
        {"cols", {494, 10}, {1, 1}, 1, 32},
        {"vec", {494}, {1}, 1, 64},
        {"out", {494}, {1}, 1, 64},
    };
    K.Loops = {{"i", 494, 1}, {"j", 10, 1}};
    K.Body = {
        {"nzval", {AffineExpr::var("i"), AffineExpr::var("j")}, false},
        {"cols", {AffineExpr::var("i"), AffineExpr::var("j")}, false},
        {"vec", {AffineExpr::constant(0)}, false},
        {"out", {AffineExpr::var("i")}, true},
    };
    // Port fidelity: double-precision interface plus the column-index
    // array the spec models.
    Out.push_back(make(
        "spmv-ellpack", K,
        "decl nzval: double[494][10];\n"
        "decl cols: bit<32>[494][10];\n"
        "decl vec: double[494];\n"
        "decl out: double[494];\n"
        "for (let i = 0..494) {\n"
        "  let sum: double = 0.0;\n"
        "  {\n"
        "    for (let j = 0..10) {\n"
        "      let v = nzval[i][j] * vec[0];\n"
        "    } combine { sum += v; }\n"
        "  }\n"
        "  ---\n"
        "  out[i] := sum;\n"
        "}\n"));
  }

  // stencil2d / stencil3d.
  Out.push_back(make("stencil-stencil2d", stencil2dSpec(Stencil2dConfig()),
                     stencil2dDahlia(Stencil2dConfig())));
  {
    KernelSpec K;
    K.Name = "stencil-stencil3d";
    K.FloatingPoint = false;
    K.MulOps = 2;
    K.AddOps = 6;
    K.Arrays = {
        {"orig3", {32, 32, 16}, {1, 1, 1}, 1, 32},
        {"sol3", {32, 32, 16}, {1, 1, 1}, 1, 32},
    };
    K.Loops = {{"i", 30, 1}, {"j", 30, 1}, {"k", 14, 1}};
    K.Body = {
        {"orig3",
         {AffineExpr::var("i"), AffineExpr::var("j"), AffineExpr::var("k")},
         false},
        {"orig3",
         {AffineExpr::var("i", 1, 1), AffineExpr::var("j"),
          AffineExpr::var("k")},
         false},
        {"sol3",
         {AffineExpr::var("i"), AffineExpr::var("j"), AffineExpr::var("k")},
         true},
    };
    Out.push_back(make(
        "stencil-stencil3d", K,
        "decl orig3: bit<32>[32][32][16];\n"
        "decl sol3: bit<32>[32][32][16];\n"
        "for (let i = 0..30) {\n"
        "  for (let j = 0..30) {\n"
        "    for (let k = 0..14) {\n"
        "      let c = orig3[i][j][k]\n"
        "      ---\n"
        "      let r = orig3[i + 1][j][k]\n"
        "      ---\n"
        "      sol3[i][j][k] := c * 2 + r;\n"
        "    }\n"
        "  }\n"
        "}\n"));
  }

  return Out;
}
