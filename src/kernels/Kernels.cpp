//===- Kernels.cpp - Benchmark kernels of the evaluation --------*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "kernels/Kernels.h"

#include <memory>
#include <sstream>

using namespace dahlia::kernels;
using namespace dahlia::hlsim;

//===----------------------------------------------------------------------===//
// Figure 2 / Figure 4: 512x512 dense matrix multiply
//===----------------------------------------------------------------------===//

KernelSpec dahlia::kernels::gemm512(int64_t Unroll, int64_t Partition) {
  KernelSpec K;
  K.Name = "gemm512";
  K.FloatingPoint = false; // int m1[512][512] in Figure 2.
  K.MulOps = 1;
  K.AddOps = 1;
  K.HasAccumulator = true;
  // SDAccel partitions on the k dimension of m1 and the k dimension of m2
  // (the dimension the unrolled loop strides over).
  K.Arrays = {
      {"m1", {512, 512}, {1, Partition}, 1, 32},
      {"m2", {512, 512}, {Partition, 1}, 1, 32},
      {"prod", {512, 512}, {1, 1}, 1, 32},
  };
  K.Loops = {
      {"i", 512, 1},
      {"j", 512, 1},
      {"k", 512, Unroll},
  };
  K.Body = {
      {"m1", {AffineExpr::var("i"), AffineExpr::var("k")}, false},
      {"m2", {AffineExpr::var("k"), AffineExpr::var("j")}, false},
      {"prod", {AffineExpr::var("i"), AffineExpr::var("j")}, true},
  };
  return K;
}

//===----------------------------------------------------------------------===//
// gemm-blocked (Figure 7, Figure 10 listing)
//===----------------------------------------------------------------------===//

std::vector<GemmBlockedConfig> dahlia::kernels::gemmBlockedSpace() {
  std::vector<GemmBlockedConfig> Space;
  const int64_t Banks[] = {1, 2, 3, 4};
  const int64_t Unrolls[] = {1, 2, 4, 6, 8};
  for (int64_t B11 : Banks)
    for (int64_t B12 : Banks)
      for (int64_t B21 : Banks)
        for (int64_t B22 : Banks)
          for (int64_t U1 : Unrolls)
            for (int64_t U2 : Unrolls)
              for (int64_t U3 : Unrolls)
                Space.push_back({B11, B12, B21, B22, U1, U2, U3});
  return Space;
}

std::string
dahlia::kernels::gemmBlockedDahlia(const GemmBlockedConfig &C) {
  std::ostringstream OS;
  OS << "decl m1: bit<32>[128 bank " << C.Bank11 << "][128 bank " << C.Bank12
     << "];\n"
     << "decl m2: bit<32>[128 bank " << C.Bank11 << "][128 bank " << C.Bank12
     << "];\n"
     << "decl prod: bit<32>[128 bank " << C.Bank21 << "][128 bank "
     << C.Bank22 << "];\n"
     << "for (let jj = 0..16) {\n"
     << "  for (let kk = 0..16) {\n"
     << "    view m1v = suffix m1[by 0][by 8 * kk];\n"
     << "    view m2v = suffix m2[by 8 * kk][by 8 * jj];\n"
     << "    view prodv = suffix prod[by 0][by 8 * jj];\n"
     << "    for (let i = 0..128) unroll " << C.Unroll1 << " {\n"
     << "      for (let j = 0..8) unroll " << C.Unroll2 << " {\n"
     << "        let sum = 0;\n"
     << "        {\n"
     << "          for (let k = 0..8) unroll " << C.Unroll3 << " {\n"
     << "            let v = m1v[i][k] * m2v[k][j];\n"
     << "          } combine {\n"
     << "            sum += v;\n"
     << "          }\n"
     << "        }\n"
     << "        ---\n"
     << "        let cur = prodv[i][j]\n"
     << "        ---\n"
     << "        prodv[i][j] := cur + sum;\n"
     << "      }\n"
     << "    }\n"
     << "  }\n"
     << "}\n";
  return OS.str();
}

KernelSpec dahlia::kernels::gemmBlockedSpec(const GemmBlockedConfig &C) {
  KernelSpec K;
  K.Name = "gemm-blocked";
  K.FloatingPoint = false;
  K.MulOps = 1;
  K.AddOps = 2;
  K.HasAccumulator = true;
  K.Arrays = {
      {"m1", {128, 128}, {C.Bank11, C.Bank12}, 1, 32},
      {"m2", {128, 128}, {C.Bank11, C.Bank12}, 1, 32},
      {"prod", {128, 128}, {C.Bank21, C.Bank22}, 1, 32},
  };
  K.Loops = {
      {"jj", 16, 1},          {"kk", 16, 1},
      {"i", 128, C.Unroll1},  {"j", 8, C.Unroll2},
      {"k", 8, C.Unroll3},
  };
  AffineExpr KkK = AffineExpr::var("kk", 8);
  KkK.Coeffs["k"] = 1;
  AffineExpr JjJ = AffineExpr::var("jj", 8);
  JjJ.Coeffs["j"] = 1;
  K.Body = {
      {"m1", {AffineExpr::var("i"), KkK}, false},
      {"m2", {KkK, JjJ}, false},
      {"prod", {AffineExpr::var("i"), JjJ}, false},
      {"prod", {AffineExpr::var("i"), JjJ}, true},
  };
  return K;
}

//===----------------------------------------------------------------------===//
// stencil2d (Figure 8a)
//===----------------------------------------------------------------------===//

std::vector<Stencil2dConfig> dahlia::kernels::stencil2dSpace() {
  std::vector<Stencil2dConfig> Space;
  for (int64_t O1 = 1; O1 <= 6; ++O1)
    for (int64_t O2 = 1; O2 <= 6; ++O2)
      for (int64_t F1 = 1; F1 <= 3; ++F1)
        for (int64_t F2 = 1; F2 <= 3; ++F2)
          for (int64_t U1 = 1; U1 <= 3; ++U1)
            for (int64_t U2 = 1; U2 <= 3; ++U2)
              Space.push_back({O1, O2, F1, F2, U1, U2});
  return Space;
}

std::string dahlia::kernels::stencil2dDahlia(const Stencil2dConfig &C) {
  std::ostringstream OS;
  OS << "decl orig: bit<32>[120 bank " << C.OrigBank1 << "][60 bank "
     << C.OrigBank2 << "];\n"
     << "decl sol: bit<32>[120][60];\n"
     << "decl filter: bit<32>[3 bank " << C.FilterBank1 << "][3 bank "
     << C.FilterBank2 << "];\n"
     << "for (let r = 0..118) {\n"
     << "  for (let c = 0..58) {\n"
     << "    view window = shift orig[by r][by c];\n"
     << "    let temp = 0;\n"
     << "    {\n"
     << "      for (let k1 = 0..3) unroll " << C.Unroll1 << " {\n"
     << "        let part = 0;\n"
     << "        for (let k2 = 0..3) unroll " << C.Unroll2 << " {\n"
     << "          let mul = filter[k1][k2] * window[k1][k2];\n"
     << "        } combine {\n"
     << "          part += mul;\n"
     << "        }\n"
     << "      } combine {\n"
     << "        temp += part;\n"
     << "      }\n"
     << "    }\n"
     << "    ---\n"
     << "    sol[r][c] := temp;\n"
     << "  }\n"
     << "}\n";
  return OS.str();
}

KernelSpec dahlia::kernels::stencil2dSpec(const Stencil2dConfig &C) {
  KernelSpec K;
  K.Name = "stencil2d";
  K.FloatingPoint = false;
  K.MulOps = 1;
  K.AddOps = 1;
  K.HasAccumulator = true;
  K.Arrays = {
      {"orig", {120, 60}, {C.OrigBank1, C.OrigBank2}, 1, 32},
      {"sol", {120, 60}, {1, 1}, 1, 32},
      {"filter", {3, 3}, {C.FilterBank1, C.FilterBank2}, 1, 32},
  };
  K.Loops = {
      {"r", 118, 1},
      {"c", 58, 1},
      {"k1", 3, C.Unroll1},
      {"k2", 3, C.Unroll2},
  };
  AffineExpr RK1 = AffineExpr::var("r");
  RK1.Coeffs["k1"] = 1;
  AffineExpr CK2 = AffineExpr::var("c");
  CK2.Coeffs["k2"] = 1;
  K.Body = {
      {"filter", {AffineExpr::var("k1"), AffineExpr::var("k2")}, false},
      {"orig", {RK1, CK2}, false},
      {"sol", {AffineExpr::var("r"), AffineExpr::var("c")}, true},
  };
  return K;
}

//===----------------------------------------------------------------------===//
// md-knn (Figure 8b)
//===----------------------------------------------------------------------===//

std::vector<MdKnnConfig> dahlia::kernels::mdKnnSpace() {
  std::vector<MdKnnConfig> Space;
  for (int64_t B1 = 1; B1 <= 4; ++B1)
    for (int64_t B2 = 1; B2 <= 4; ++B2)
      for (int64_t B3 = 1; B3 <= 4; ++B3)
        for (int64_t B4 = 1; B4 <= 4; ++B4)
          for (int64_t U1 = 1; U1 <= 8; ++U1)
            for (int64_t U2 = 1; U2 <= 8; ++U2)
              Space.push_back({B1, B2, B3, B4, U1, U2});
  return Space;
}

std::string dahlia::kernels::mdKnnDahlia(const MdKnnConfig &C) {
  std::ostringstream OS;
  // The position/force data is floating point (the spec models the
  // Lennard-Jones chain in FP); only the neighbour-index list is integer.
  OS << "decl position: float[256 bank " << C.BankPos << "];\n"
     << "decl pos_stage: float[256];\n"
     // The atom dimension's banking tracks the unroll factor (our port
     // re-banks the staging memory it owns); the neighbour dimension's
     // banking is the swept BankNlPos parameter and gates inner
     // parallelism.
     << "decl nlpos: float[256 bank " << C.UnrollI << "][16 bank "
     << C.BankNlPos << "];\n"
     << "decl nl: bit<32>[256 bank " << C.BankNl << "][16];\n"
     << "decl force: float[256 bank " << C.BankForce << "];\n"
     // Phase 1: the data-dependent gather, hoisted into its own serial
     // loop (Section 5.3: "we hoist this serial section").
     << "for (let i0 = 0..256) {\n"
     << "  for (let j0 = 0..16) {\n"
     << "    let nid = nl[i0][j0]\n"
     << "    ---\n"
     << "    let p = pos_stage[nid]\n"
     << "    ---\n"
     << "    nlpos[i0][j0] := p;\n"
     << "  }\n"
     << "}\n"
     << "---\n"
     // Phase 2: the parallelizable force computation.
     << "for (let i = 0..256) unroll " << C.UnrollI << " {\n"
     << "  let fsum = 0.0;\n"
     << "  {\n"
     << "    for (let j = 0..16) unroll " << C.UnrollJ << " {\n"
     << "      let del = position[i] - nlpos[i][j];\n"
     << "      let contrib = del * del * del;\n"
     << "    } combine {\n"
     << "      fsum += contrib;\n"
     << "    }\n"
     << "  }\n"
     << "  ---\n"
     << "  force[i] := fsum;\n"
     << "}\n";
  return OS.str();
}

KernelSpec dahlia::kernels::mdKnnSpec(const MdKnnConfig &C) {
  KernelSpec K;
  K.Name = "md-knn";
  K.FloatingPoint = true; // LJ potential in FP.
  // Two serial phases, both modelled as real nests (matching the port's
  // source order): the hoisted data-dependent gather, then the
  // parallelizable force computation.
  //
  // Nest 0 — the gather: 256*16 serial iterations streaming neighbour
  // positions into the staging layout.
  K.Loops = {
      {"i0", 256, 1},
      {"j0", 16, 1},
  };
  K.Body = {
      {"nl", {AffineExpr::var("i0"), AffineExpr::var("j0")}, false},
      {"nlpos", {AffineExpr::var("i0"), AffineExpr::var("j0")}, true},
  };
  // Filling the pos_stage staging copy is the serial phase the
  // restructure adds; it stays outside the nests.
  K.ExtraSerialCycles = 256.0;
  K.Arrays = {
      {"position", {256}, {C.BankPos}, 1, 32},
      {"nlpos", {256, 16}, {C.UnrollI, C.BankNlPos}, 1, 32},
      {"nl", {256, 16}, {C.BankNl, 1}, 1, 32},
      {"force", {256}, {C.BankForce}, 1, 32},
  };
  // Nest 1 — the force computation. The Lennard-Jones force chain is a
  // long dependence-bound FP pipeline.
  LoopNest Force;
  Force.Loops = {
      {"i", 256, C.UnrollI},
      {"j", 16, C.UnrollJ},
  };
  Force.Body = {
      {"position", {AffineExpr::var("i")}, false},
      {"nlpos", {AffineExpr::var("i"), AffineExpr::var("j")}, false},
      {"force", {AffineExpr::var("i")}, true},
  };
  Force.MulOps = 3;
  Force.AddOps = 2;
  Force.HasAccumulator = true;
  Force.IterationLatency = 30.0;
  K.ExtraNests.push_back(std::move(Force));
  return K;
}

//===----------------------------------------------------------------------===//
// md-grid (Figure 8c)
//===----------------------------------------------------------------------===//

std::vector<MdGridConfig> dahlia::kernels::mdGridSpace() {
  std::vector<MdGridConfig> Space;
  for (int64_t B1 = 1; B1 <= 4; ++B1)
    for (int64_t B2 = 1; B2 <= 4; ++B2)
      for (int64_t B3 = 1; B3 <= 4; ++B3)
        for (int64_t U1 = 1; U1 <= 7; ++U1)
          for (int64_t U2 = 1; U2 <= 7; ++U2)
            for (int64_t U3 = 1; U3 <= 7; ++U3)
              Space.push_back({B1, B2, B3, U1, U2, U3});
  return Space;
}

std::string dahlia::kernels::mdGridDahlia(const MdGridConfig &C) {
  std::ostringstream OS;
  // Floating-point interface, matching the spec's FP force model.
  OS << "decl pos: float[4 bank " << C.Bank1 << "][4 bank " << C.Bank2
     << "][4 bank " << C.Bank3 << "][16];\n"
     << "decl frc: float[4 bank " << C.Bank1 << "][4 bank " << C.Bank2
     << "][4 bank " << C.Bank3 << "][16];\n"
     // The outer three (cell) loops are parallelizable; the inner atom
     // loop is a sequential reduction per cell.
     << "for (let i = 0..4) unroll " << C.Unroll1 << " {\n"
     << "  for (let j = 0..4) unroll " << C.Unroll2 << " {\n"
     << "    for (let k = 0..4) unroll " << C.Unroll3 << " {\n"
     << "      let acc = 0.0;\n"
     << "      {\n"
     << "        for (let a = 0..16) {\n"
     << "          let q = pos[i][j][k][a];\n"
     << "          let v = q * q;\n"
     << "        } combine {\n"
     << "          acc += v;\n"
     << "        }\n"
     << "      }\n"
     << "      ---\n"
     << "      frc[i][j][k][0] := acc;\n"
     << "    }\n"
     << "  }\n"
     << "}\n";
  return OS.str();
}

KernelSpec dahlia::kernels::mdGridSpec(const MdGridConfig &C) {
  KernelSpec K;
  K.Name = "md-grid";
  K.FloatingPoint = true;
  K.MulOps = 2;
  K.AddOps = 3;
  K.HasAccumulator = true;
  K.Arrays = {
      {"pos", {4, 4, 4, 16}, {C.Bank1, C.Bank2, C.Bank3, 1}, 1, 32},
      {"frc", {4, 4, 4, 16}, {C.Bank1, C.Bank2, C.Bank3, 1}, 1, 32},
  };
  K.Loops = {
      {"i", 4, C.Unroll1},
      {"j", 4, C.Unroll2},
      {"k", 4, C.Unroll3},
      {"a", 16, 1},
  };
  K.Body = {
      {"pos",
       {AffineExpr::var("i"), AffineExpr::var("j"), AffineExpr::var("k"),
        AffineExpr::var("a")},
       false},
      {"frc",
       {AffineExpr::var("i"), AffineExpr::var("j"), AffineExpr::var("k"),
        AffineExpr::constant(0)},
       true},
  };
  return K;
}

//===----------------------------------------------------------------------===//
// Exploration problems
//===----------------------------------------------------------------------===//

namespace {

template <typename Config>
dahlia::dse::DseProblem
makeProblem(std::vector<Config> Space,
            std::string (*Source)(const Config &),
            KernelSpec (*Spec)(const Config &), bool EstimateRejected) {
  auto Shared = std::make_shared<std::vector<Config>>(std::move(Space));
  dahlia::dse::DseProblem P;
  P.Size = Shared->size();
  P.Source = [Shared, Source](size_t I) { return Source((*Shared)[I]); };
  P.Spec = [Shared, Spec](size_t I) { return Spec((*Shared)[I]); };
  P.EstimateRejected = EstimateRejected;
  return P;
}

} // namespace

dahlia::dse::DseProblem dahlia::kernels::gemmBlockedProblem() {
  return makeProblem<GemmBlockedConfig>(gemmBlockedSpace(), gemmBlockedDahlia,
                                        gemmBlockedSpec,
                                        /*EstimateRejected=*/true);
}

dahlia::dse::DseProblem dahlia::kernels::stencil2dProblem() {
  return makeProblem<Stencil2dConfig>(stencil2dSpace(), stencil2dDahlia,
                                      stencil2dSpec,
                                      /*EstimateRejected=*/false);
}

dahlia::dse::DseProblem dahlia::kernels::mdKnnProblem() {
  return makeProblem<MdKnnConfig>(mdKnnSpace(), mdKnnDahlia, mdKnnSpec,
                                  /*EstimateRejected=*/false);
}

dahlia::dse::DseProblem dahlia::kernels::mdGridProblem() {
  return makeProblem<MdGridConfig>(mdGridSpace(), mdGridDahlia, mdGridSpec,
                                   /*EstimateRejected=*/false);
}
