//===- KernelsTest.cpp - Benchmark kernel tests -----------------*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
// Checks that every benchmark's Dahlia port parses and type-checks, and
// that the design-space generators and acceptance behaviour match the
// paper's structure.
//
//===----------------------------------------------------------------------===//

#include "kernels/Kernels.h"

#include "driver/CompilerPipeline.h"

#include <gtest/gtest.h>

using namespace dahlia;
using namespace dahlia::kernels;

namespace {

bool acceptsSource(const std::string &Src, std::string *Why = nullptr) {
  std::string FirstError;
  bool OK = driver::checksSource(Src, FirstError);
  if (!OK && Why)
    *Why = FirstError;
  return OK;
}

TEST(Kernels, DefaultConfigsTypeCheck) {
  std::string Why;
  EXPECT_TRUE(acceptsSource(gemmBlockedDahlia(GemmBlockedConfig()), &Why))
      << Why;
  EXPECT_TRUE(acceptsSource(stencil2dDahlia(Stencil2dConfig()), &Why)) << Why;
  EXPECT_TRUE(acceptsSource(mdKnnDahlia(MdKnnConfig()), &Why)) << Why;
  EXPECT_TRUE(acceptsSource(mdGridDahlia(MdGridConfig()), &Why)) << Why;
}

TEST(Kernels, AllMachSuitePortsTypeCheck) {
  for (const MachSuiteBenchmark &B : machSuiteBenchmarks()) {
    std::string Why;
    EXPECT_TRUE(acceptsSource(B.DahliaSource, &Why))
        << B.Name << ": " << Why;
  }
}

TEST(Kernels, MachSuiteHasSixteenBenchmarks) {
  // The paper ports 16 of the 19 MachSuite benchmarks (backprop,
  // fft-transpose and viterbi excluded).
  EXPECT_EQ(machSuiteBenchmarks().size(), 16u);
}

TEST(Kernels, SpaceSizesMatchThePaper) {
  EXPECT_EQ(gemmBlockedSpace().size(), 32000u);  // Section 5.2.
  EXPECT_EQ(stencil2dSpace().size(), 2916u);     // Section 5.3.
  EXPECT_EQ(mdKnnSpace().size(), 16384u);        // Section 5.3.
  EXPECT_EQ(mdGridSpace().size(), 21952u);       // Section 5.3.
}

TEST(Kernels, GemmBlockedMatchedConfigAccepted) {
  GemmBlockedConfig C;
  C.Bank11 = 2;
  C.Bank12 = 2;
  C.Bank21 = 2;
  C.Bank22 = 2;
  C.Unroll1 = 2;
  C.Unroll2 = 2;
  C.Unroll3 = 2;
  std::string Why;
  EXPECT_TRUE(acceptsSource(gemmBlockedDahlia(C), &Why)) << Why;
}

TEST(Kernels, GemmBlockedMismatchedUnrollRejected) {
  GemmBlockedConfig C;
  C.Bank11 = 4;
  C.Unroll1 = 2; // i-unroll 2 over 4 banks: needs a shrink view.
  EXPECT_FALSE(acceptsSource(gemmBlockedDahlia(C)));
}

TEST(Kernels, GemmBlockedUnrollSixRejected) {
  GemmBlockedConfig C;
  C.Unroll3 = 6; // 6 does not divide the trip count 8.
  EXPECT_FALSE(acceptsSource(gemmBlockedDahlia(C)));
}

TEST(Kernels, GemmBlockedBankingThreeRejected) {
  GemmBlockedConfig C;
  C.Bank11 = 3; // 3 does not divide 128.
  EXPECT_FALSE(acceptsSource(gemmBlockedDahlia(C)));
}

TEST(Kernels, Stencil2dUnrollNeedsMatchingBanks) {
  Stencil2dConfig C;
  C.Unroll1 = 3;
  EXPECT_FALSE(acceptsSource(stencil2dDahlia(C)));
  C.OrigBank1 = 3;
  C.FilterBank1 = 3;
  std::string Why;
  EXPECT_TRUE(acceptsSource(stencil2dDahlia(C), &Why)) << Why;
}

TEST(Kernels, Stencil2dUnrollTwoRejectedByTripCount) {
  Stencil2dConfig C;
  C.Unroll2 = 2; // 2 does not divide 3.
  EXPECT_FALSE(acceptsSource(stencil2dDahlia(C)));
}

TEST(Kernels, MdKnnAcceptanceStructure) {
  // Unroll over atoms requires matching banking on position, nlpos and
  // force.
  MdKnnConfig C;
  C.UnrollI = 2;
  EXPECT_FALSE(acceptsSource(mdKnnDahlia(C)));
  C.BankPos = 2;
  C.BankNlPos = 2;
  C.BankForce = 2;
  std::string Why;
  EXPECT_TRUE(acceptsSource(mdKnnDahlia(C), &Why)) << Why;
  // The neighbour-list banking is free: the gather loop is sequential.
  C.BankNl = 3;
  EXPECT_FALSE(acceptsSource(mdKnnDahlia(C))); // 3 does not divide 256.
  C.BankNl = 4;
  EXPECT_TRUE(acceptsSource(mdKnnDahlia(C), &Why)) << Why;
}

TEST(Kernels, MdGridAcceptanceStructure) {
  MdGridConfig C;
  C.Unroll2 = 2;
  EXPECT_FALSE(acceptsSource(mdGridDahlia(C)));
  C.Bank2 = 2;
  std::string Why;
  EXPECT_TRUE(acceptsSource(mdGridDahlia(C), &Why)) << Why;
  C.Unroll3 = 5; // 5 does not divide 4.
  EXPECT_FALSE(acceptsSource(mdGridDahlia(C)));
}

TEST(Kernels, SpecsAreConsistentWithSources) {
  // Spec loops/arrays must track the configurable parameters.
  GemmBlockedConfig C;
  C.Bank11 = 4;
  C.Unroll3 = 8;
  hlsim::KernelSpec K = gemmBlockedSpec(C);
  EXPECT_EQ(K.Arrays[0].Partition[0], 4);
  EXPECT_EQ(K.Loops.back().Unroll, 8);
  EXPECT_EQ(K.totalIters(), 16LL * 16 * 128 * 8 * 8);
}

} // namespace
