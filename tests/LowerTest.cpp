//===- LowerTest.cpp - Dahlia-to-Filament lowering tests --------*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
// Integration tests: Dahlia programs accepted by the affine checker are
// lowered to the Filament core and executed under the *checked* semantics;
// they must terminate without getting stuck (the end-to-end realisation of
// the Section 4.6 soundness theorem) and must compute the right values.
//
//===----------------------------------------------------------------------===//

#include "driver/CompilerPipeline.h"

#include "filament/Interp.h"

#include <gtest/gtest.h>

using namespace dahlia;
namespace fil = dahlia::filament;

namespace {

/// Parses, checks, and lowers through the pipeline; asserts each stage
/// succeeds.
LoweredProgram lowerOK(std::string_view Src) {
  driver::CompileResult R = driver::CompilerPipeline().lower(Src);
  EXPECT_TRUE(R.ok()) << R.firstError() << "\nsource: " << Src;
  if (!R)
    return {};
  return std::move(*R.Lowered);
}

/// Runs the lowered program on the checked small-step semantics.
fil::SmallStepper runChecked(const LoweredProgram &L, fil::Store S) {
  fil::SmallStepper M(std::move(S), fil::Rho(),
                      L.Program ? L.Program : fil::Cmd::skip());
  fil::EvalResult Res = M.run(1u << 24);
  EXPECT_TRUE(bool(Res)) << "execution failed: " << Res.Why << "\n"
                         << fil::printCmd(*L.Program);
  return M;
}

int64_t memAt(const fil::SmallStepper &M, const LoweredProgram &L,
              const std::string &Name, std::vector<int64_t> Indices) {
  auto It = L.Mems.find(Name);
  EXPECT_NE(It, L.Mems.end());
  auto [BankMem, Off] = It->second.locate(Indices);
  const auto &Vec = M.store().Mems.at(BankMem);
  return std::get<int64_t>(Vec.at(static_cast<size_t>(Off)));
}

TEST(Lower, MemoryBecomesPerBankMemories) {
  LoweredProgram L = lowerOK("decl A: bit<32>[8 bank 4]; skip;");
  ASSERT_EQ(L.Mems.count("A"), 1u);
  EXPECT_EQ(L.Mems["A"].BankNames.size(), 4u);
  EXPECT_EQ(L.MemSigs.size(), 4u);
  for (const auto &[Name, Size] : L.MemSigs)
    EXPECT_EQ(Size, 2) << Name;
}

TEST(Lower, RoundRobinLayout) {
  // Element i of an 8/4-banked memory lives in bank i%4 at offset i/4.
  LoweredProgram L = lowerOK("decl A: bit<32>[8 bank 4]; skip;");
  const LoweredMem &M = L.Mems["A"];
  EXPECT_EQ(M.locate({0}).first, M.BankNames[0]);
  EXPECT_EQ(M.locate({5}).first, M.BankNames[1]);
  EXPECT_EQ(M.locate({5}).second, 1);
  EXPECT_EQ(M.locate({7}).first, M.BankNames[3]);
}

TEST(Lower, StaticWriteAndReadBack) {
  LoweredProgram L = lowerOK("decl A: bit<32>[4 bank 2];\n"
                             "A[0] := 7; A[1] := 9;");
  fil::SmallStepper M = runChecked(L, L.makeZeroStore());
  EXPECT_EQ(memAt(M, L, "A", {0}), 7);
  EXPECT_EQ(memAt(M, L, "A", {1}), 9);
}

TEST(Lower, SequentialLoopOverBankedMemory) {
  // A dynamic single access dispatches to the right bank at runtime.
  LoweredProgram L = lowerOK("decl A: bit<32>[8 bank 4];\n"
                             "for (let i = 0..8) { A[i] := i + 1; }");
  fil::SmallStepper M = runChecked(L, L.makeZeroStore());
  for (int64_t I = 0; I != 8; ++I)
    EXPECT_EQ(memAt(M, L, "A", {I}), I + 1) << "element " << I;
}

TEST(Lower, UnrolledLoopWritesAllElements) {
  LoweredProgram L = lowerOK("decl A: bit<32>[8 bank 4];\n"
                             "for (let i = 0..8) unroll 4 { A[i] := i * 2; }");
  fil::SmallStepper M = runChecked(L, L.makeZeroStore());
  for (int64_t I = 0; I != 8; ++I)
    EXPECT_EQ(memAt(M, L, "A", {I}), 2 * I);
}

TEST(Lower, IdenticalReadsShareOneFetch) {
  // Two reads of A[0] in one time step lower to a single core read; the
  // checked semantics would get stuck otherwise.
  LoweredProgram L = lowerOK("decl A: bit<32>[4];\n"
                             "decl O: bit<32>[4 bank 4];\n"
                             "let x = A[0]; let y = A[0];\n"
                             "O[0] := x; O[1] := y;");
  fil::Store S = L.makeZeroStore();
  // Fill A[0] (bank 0, offset 0).
  S.Mems[L.Mems["A"].BankNames[0]][0] = fil::Value(int64_t(42));
  fil::SmallStepper M = runChecked(L, S);
  EXPECT_EQ(memAt(M, L, "O", {0}), 42);
  EXPECT_EQ(memAt(M, L, "O", {1}), 42);
}

TEST(Lower, FanOutReadAcrossUnrolledCopies) {
  // Every copy reads A[0]: one fetch feeds all PEs (Section 3.1).
  LoweredProgram L = lowerOK("decl A: bit<32>[4];\n"
                             "decl O: bit<32>[8 bank 4];\n"
                             "for (let i = 0..8) unroll 4 { O[i] := A[0]; }");
  fil::Store S = L.makeZeroStore();
  S.Mems[L.Mems["A"].BankNames[0]][0] = fil::Value(int64_t(13));
  fil::SmallStepper M = runChecked(L, S);
  for (int64_t I = 0; I != 8; ++I)
    EXPECT_EQ(memAt(M, L, "O", {I}), 13);
}

TEST(Lower, OrderedCompositionWithinUnrolledBody) {
  LoweredProgram L = lowerOK("decl A: bit<32>[8 bank 2];\n"
                             "decl B: bit<32>[8 bank 2];\n"
                             "for (let i = 0..8) unroll 2 {\n"
                             "  let x = A[i]\n"
                             "  ---\n"
                             "  B[i] := x + 100;\n"
                             "}");
  fil::Store S = L.makeZeroStore();
  for (int64_t I = 0; I != 8; ++I) {
    auto [Bank, Off] = L.Mems["A"].locate({I});
    S.Mems[Bank][static_cast<size_t>(Off)] = fil::Value(I);
  }
  fil::SmallStepper M = runChecked(L, S);
  for (int64_t I = 0; I != 8; ++I)
    EXPECT_EQ(memAt(M, L, "B", {I}), I + 100);
}

TEST(Lower, CombineBlockReduces) {
  // Dot-product shape from Section 3.5.
  LoweredProgram L = lowerOK("decl A: bit<32>[8 bank 2];\n"
                             "decl B: bit<32>[8 bank 2];\n"
                             "decl O: bit<32>[1];\n"
                             "let dot = 0;\n"
                             "{\n"
                             "for (let i = 0..8) unroll 2 {\n"
                             "  let v = A[i] * B[i];\n"
                             "} combine {\n"
                             "  dot += v;\n"
                             "}\n"
                             "}\n"
                             "---\n"
                             "O[0] := dot;");
  fil::Store S = L.makeZeroStore();
  int64_t Expected = 0;
  for (int64_t I = 0; I != 8; ++I) {
    auto [BankA, OffA] = L.Mems["A"].locate({I});
    auto [BankB, OffB] = L.Mems["B"].locate({I});
    S.Mems[BankA][static_cast<size_t>(OffA)] = fil::Value(I + 1);
    S.Mems[BankB][static_cast<size_t>(OffB)] = fil::Value(I + 2);
    Expected += (I + 1) * (I + 2);
  }
  fil::SmallStepper M = runChecked(L, S);
  EXPECT_EQ(memAt(M, L, "O", {0}), Expected);
}

TEST(Lower, MultiDimensionalMatrixMultiply) {
  // 4x4 integer matrix multiply with an unrolled inner loop.
  LoweredProgram L = lowerOK(
      "decl A: bit<32>[4][4 bank 4];\n"
      "decl B: bit<32>[4 bank 4][4];\n"
      "decl P: bit<32>[4][4];\n"
      "for (let i = 0..4) {\n"
      "  for (let j = 0..4) {\n"
      "    let sum = 0;\n"
      "    {\n"
      "    for (let k = 0..4) unroll 4 {\n"
      "      let v = A[i][k] * B[k][j];\n"
      "    } combine { sum += v; }\n"
      "    }\n"
      "    ---\n"
      "    P[i][j] := sum;\n"
      "  }\n"
      "}");
  fil::Store S = L.makeZeroStore();
  int64_t AM[4][4], BM[4][4];
  for (int64_t I = 0; I != 4; ++I)
    for (int64_t J = 0; J != 4; ++J) {
      AM[I][J] = I * 4 + J + 1;
      BM[I][J] = (I == J) ? 2 : 1;
      auto [BankA, OffA] = L.Mems["A"].locate({I, J});
      auto [BankB, OffB] = L.Mems["B"].locate({I, J});
      S.Mems[BankA][static_cast<size_t>(OffA)] = fil::Value(AM[I][J]);
      S.Mems[BankB][static_cast<size_t>(OffB)] = fil::Value(BM[I][J]);
    }
  fil::SmallStepper M = runChecked(L, S);
  for (int64_t I = 0; I != 4; ++I)
    for (int64_t J = 0; J != 4; ++J) {
      int64_t Want = 0;
      for (int64_t K = 0; K != 4; ++K)
        Want += AM[I][K] * BM[K][J];
      EXPECT_EQ(memAt(M, L, "P", {I, J}), Want) << I << "," << J;
    }
}

TEST(Lower, ShrinkViewCompilesToDirectAccess) {
  // sh[i] compiles to A[i] (Section 3.6): values read through the view
  // match the underlying layout.
  LoweredProgram L = lowerOK("decl A: bit<32>[8 bank 4];\n"
                             "decl O: bit<32>[8 bank 2];\n"
                             "view sh = shrink A[by 2];\n"
                             "for (let i = 0..8) unroll 2 {\n"
                             "  O[i] := sh[i];\n"
                             "}");
  fil::Store S = L.makeZeroStore();
  for (int64_t I = 0; I != 8; ++I) {
    auto [Bank, Off] = L.Mems["A"].locate({I});
    S.Mems[Bank][static_cast<size_t>(Off)] = fil::Value(7 * I);
  }
  fil::SmallStepper M = runChecked(L, S);
  for (int64_t I = 0; I != 8; ++I)
    EXPECT_EQ(memAt(M, L, "O", {I}), 7 * I);
}

TEST(Lower, SuffixViewIndexing) {
  // s = suffix A[by 2*i]; s[1] reads A[2*i + 1] (Section 3.6).
  LoweredProgram L = lowerOK("decl A: bit<32>[8 bank 2];\n"
                             "decl O: bit<32>[4 bank 4];\n"
                             "for (let i = 0..4) unroll 4 {\n"
                             "  O[i] := 0;\n"
                             "}\n"
                             "---\n"
                             "for (let i = 0..4) {\n"
                             "  view s = suffix A[by 2 * i];\n"
                             "  let x = s[1];\n"
                             "  ---\n"
                             "  O[i] := x;\n"
                             "}");
  fil::Store S = L.makeZeroStore();
  for (int64_t I = 0; I != 8; ++I) {
    auto [Bank, Off] = L.Mems["A"].locate({I});
    S.Mems[Bank][static_cast<size_t>(Off)] = fil::Value(10 * I);
  }
  fil::SmallStepper M = runChecked(L, S);
  for (int64_t I = 0; I != 4; ++I)
    EXPECT_EQ(memAt(M, L, "O", {I}), 10 * (2 * I + 1));
}

TEST(Lower, SplitViewLayout) {
  // split A[by 2] on bit<32>[12 bank 4]: element (i, j) of the view is
  // A[(j / 2) * 4 + i * 2 + (j % 2)].
  LoweredProgram L = lowerOK("decl A: bit<32>[12 bank 4];\n"
                             "decl O: bit<32>[2 bank 2];\n"
                             "view sp = split A[by 2];\n"
                             "for (let i = 0..2) unroll 2 {\n"
                             "  O[i] := sp[i][3];\n"
                             "}");
  fil::Store S = L.makeZeroStore();
  for (int64_t I = 0; I != 12; ++I) {
    auto [Bank, Off] = L.Mems["A"].locate({I});
    S.Mems[Bank][static_cast<size_t>(Off)] = fil::Value(100 + I);
  }
  fil::SmallStepper M = runChecked(L, S);
  // (i, 3) -> (3/2)*4 + i*2 + 1 = 5 + 2i.
  EXPECT_EQ(memAt(M, L, "O", {0}), 105);
  EXPECT_EQ(memAt(M, L, "O", {1}), 107);
}

TEST(Lower, FunctionInlining) {
  LoweredProgram L = lowerOK(
      "def store2(m: bit<32>[4 bank 2], v: bit<32>) { m[0] := v; m[1] := v; }\n"
      "decl A: bit<32>[4 bank 2];\n"
      "store2(A, 5);");
  fil::SmallStepper M = runChecked(L, L.makeZeroStore());
  EXPECT_EQ(memAt(M, L, "A", {0}), 5);
  EXPECT_EQ(memAt(M, L, "A", {1}), 5);
}

TEST(Lower, MultiPortedMemoriesRejectedByLowering) {
  // Filament has no quantitative port tracking (Section 4.5 leaves it as
  // future work), so lowering refuses multi-ported memories explicitly.
  const char *Src = "decl A: bit<32>{2}[10]; let x = A[0]; A[1] := x + 1;";
  ASSERT_TRUE(driver::checksSource(Src));
  driver::CompileResult R = driver::CompilerPipeline().lower(Src);
  EXPECT_FALSE(R.ok());
  EXPECT_FALSE(R.Lowered.has_value());
}

TEST(Lower, WhileLoopLowers) {
  LoweredProgram L = lowerOK("decl O: bit<32>[1];\n"
                             "let i = 0; let acc = 0;\n"
                             "{\n"
                             "while (i < 5) {\n"
                             "  acc := acc + i; i := i + 1;\n"
                             "}\n"
                             "}\n"
                             "---\n"
                             "O[0] := acc;");
  fil::SmallStepper M = runChecked(L, L.makeZeroStore());
  EXPECT_EQ(memAt(M, L, "O", {0}), 10);
}

TEST(Lower, WellTypedProgramsNeverGetStuck) {
  // End-to-end soundness on a batch of accepted programs, including every
  // accepted example from the paper encoded in the sema tests.
  const char *Programs[] = {
      "decl A: bit<32>[10]; let x = A[0]\n---\nA[1] := 1;",
      "decl A: bit<32>[10 bank 2]; A{0}[0] := 1; A{1}[0] := 2;",
      "decl A: bit<32>[10 bank 2];\n"
      "for (let i = 0..10) unroll 2 { A[i] := 1; }",
      "decl A: bit<32>[8 bank 4];\nview sh = shrink A[by 2];\n"
      "for (let i = 0..8) unroll 2 { let x = sh[i]; }",
      "decl A: bit<32>[12 bank 4];\n"
      "for (let i = 0..3) {\n  view r = shift A[by i * i];\n"
      "  for (let j = 0..4) unroll 4 { let x = r[j]; }\n}",
      "decl A: bit<32>[12 bank 4]; decl B: bit<32>[12 bank 4];\n"
      "view sa = split A[by 2]; view sb = split B[by 2];\n"
      "let sum = 0;\n"
      "for (let i = 0..6) unroll 2 {\n"
      "  for (let j = 0..2) unroll 2 {\n"
      "    let v = sa[j][i] * sb[j][i];\n"
      "  } combine { sum += v; }\n"
      "}",
  };
  for (const char *Src : Programs) {
    LoweredProgram L = lowerOK(Src);
    if (!L.Program)
      continue;
    fil::SmallStepper M(L.makeZeroStore(), fil::Rho(), L.Program);
    fil::EvalResult Res = M.run(1u << 24);
    EXPECT_NE(Res.St, fil::EvalResult::Stuck)
        << "stuck on accepted program: " << Res.Why << "\nsource:\n"
        << Src;
  }
}

} // namespace
