//===- FilamentAlgebraTest.cpp - Semantic laws of the core ------*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
// Algebraic laws of the checked semantics, tested over generated programs:
// skip is a unit for both compositions, execution is deterministic, and
// ordered composition's rho is the union of its steps' consumption.
//
//===----------------------------------------------------------------------===//

#include "filament/Generator.h"
#include "filament/Interp.h"

#include <gtest/gtest.h>

using namespace dahlia::filament;

namespace {

struct Outcome {
  EvalResult::Status St;
  Store S;
  Rho R;
};

Outcome runSmall(const Store &S0, const CmdP &C) {
  SmallStepper M(S0, Rho(), C);
  EvalResult Res = M.run();
  return {Res.St, M.store(), M.rho()};
}

class AlgebraSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AlgebraSweep, SkipIsUnitOfPar) {
  GeneratedProgram G = generateWellTyped(GetParam());
  Outcome Plain = runSmall(G.InitialStore, G.Program);
  Outcome Left = runSmall(G.InitialStore, Cmd::par(Cmd::skip(), G.Program));
  Outcome Right = runSmall(G.InitialStore, Cmd::par(G.Program, Cmd::skip()));
  EXPECT_EQ(Plain.St, Left.St);
  EXPECT_EQ(Plain.St, Right.St);
  if (Plain.St == EvalResult::OK) {
    EXPECT_EQ(Plain.S, Left.S);
    EXPECT_EQ(Plain.S, Right.S);
    EXPECT_EQ(Plain.R, Left.R);
    EXPECT_EQ(Plain.R, Right.R);
  }
}

TEST_P(AlgebraSweep, SkipIsUnitOfSeq) {
  GeneratedProgram G = generateWellTyped(GetParam());
  Outcome Plain = runSmall(G.InitialStore, G.Program);
  Outcome Left = runSmall(G.InitialStore, Cmd::seq(Cmd::skip(), G.Program));
  Outcome Right = runSmall(G.InitialStore, Cmd::seq(G.Program, Cmd::skip()));
  EXPECT_EQ(Plain.St, Left.St);
  EXPECT_EQ(Plain.St, Right.St);
  if (Plain.St == EvalResult::OK) {
    EXPECT_EQ(Plain.S, Left.S);
    EXPECT_EQ(Plain.S, Right.S);
    // Ordered composition restores rho per step and joins with a union, so
    // sequencing with skip leaves the final rho unchanged.
    EXPECT_EQ(Plain.R, Left.R);
    EXPECT_EQ(Plain.R, Right.R);
  }
}

TEST_P(AlgebraSweep, ExecutionIsDeterministic) {
  GeneratedProgram G = generateWellTyped(GetParam());
  Outcome A = runSmall(G.InitialStore, G.Program);
  Outcome B = runSmall(G.InitialStore, G.Program);
  EXPECT_EQ(A.St, B.St);
  EXPECT_EQ(A.S, B.S);
  EXPECT_EQ(A.R, B.R);
}

TEST_P(AlgebraSweep, SeqRhoIsUnionOfStepRhos) {
  // Run c1 and c2 separately from the same store; running {c1 --- c2}
  // must produce rho1 union rho2 when c2's store effects do not change its
  // own consumption (we only assert the union upper bound which holds
  // always: rho(seq) is contained in rho1 of c1 plus all memories).
  GeneratedProgram G1 = generateWellTyped(GetParam() * 2 + 1);
  GeneratedProgram G2 = generateWellTyped(GetParam() * 2 + 2);
  // Give both programs the same memory universe.
  Store S0 = G1.InitialStore;
  for (const auto &[Name, Mem] : G2.InitialStore.Mems)
    S0.Mems.emplace(Name, Mem);
  Outcome Seq = runSmall(S0, Cmd::seq(G1.Program, G2.Program));
  if (Seq.St != EvalResult::OK)
    GTEST_SKIP() << "variable collisions can make the pairing ill-formed";
  Outcome First = runSmall(S0, G1.Program);
  ASSERT_EQ(First.St, EvalResult::OK);
  // Everything c1 consumed is consumed after the composition.
  for (const std::string &M : First.R)
    EXPECT_EQ(Seq.R.count(M), 1u) << M;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraSweep,
                         ::testing::Range<uint64_t>(0, 60));

TEST(FilamentAlgebra, ParIsLeftToRightSequential) {
  // The checked semantics executes unordered composition left-to-right;
  // data dependencies through variables are honoured.
  Store S;
  CmdP C = Cmd::par(Cmd::let("x", Expr::num(1)),
                    Cmd::assign("x", Expr::binop(Op::Add, Expr::var("x"),
                                                 Expr::num(1))));
  Outcome O = runSmall(S, C);
  ASSERT_EQ(O.St, EvalResult::OK);
  EXPECT_EQ(std::get<int64_t>(O.S.Vars.at("x")), 2);
}

TEST(FilamentAlgebra, WhileIterationsGetFreshRho) {
  // A loop reading the same memory every iteration terminates: each
  // iteration is ordered composition, which restores rho.
  Store S;
  S.Mems["a"] = {Value(int64_t(7))};
  S.Vars["i"] = Value(int64_t(0));
  CmdP Body = Cmd::par(
      Cmd::expr(Expr::read("a", Expr::num(0))),
      Cmd::assign("i", Expr::binop(Op::Add, Expr::var("i"), Expr::num(1))));
  CmdP Loop =
      Cmd::whilec(Expr::binop(Op::Lt, Expr::var("i"), Expr::num(10)), Body);
  SmallStepper M(S, Rho(), Loop);
  EvalResult Res = M.run();
  EXPECT_TRUE(bool(Res)) << Res.Why;
  EXPECT_EQ(std::get<int64_t>(M.store().Vars.at("i")), 10);
  // The loop consumed a (in its last observation), so it is in rho.
  EXPECT_EQ(M.rho().count("a"), 1u);
}

} // namespace
