//===- SoundnessTest.cpp - Empirical soundness of Filament ------*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
// Property-based tests of the Section 4.6 soundness theorem: well-typed
// programs never get stuck under the checked semantics, and the big-step
// and small-step semantics agree.
//
//===----------------------------------------------------------------------===//

#include "filament/Generator.h"
#include "filament/Interp.h"
#include "filament/TypeSystem.h"

#include <gtest/gtest.h>

using namespace dahlia::filament;

namespace {

class SoundnessSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SoundnessSweep, GeneratedProgramsAreWellTyped) {
  GeneratedProgram G = generateWellTyped(GetParam());
  std::string Why;
  EXPECT_TRUE(wellTyped(G.MemSigs, *G.Program, &Why))
      << "seed " << GetParam() << ": " << Why << "\n"
      << printCmd(*G.Program);
}

TEST_P(SoundnessSweep, WellTypedNeverGetsStuck) {
  // The soundness theorem: if |- c and c steps to an irreducible c', then
  // c' = skip. Small-step execution of a well-typed program must therefore
  // end in skip, never in a stuck configuration.
  GeneratedProgram G = generateWellTyped(GetParam());
  SmallStepper M(G.InitialStore, Rho(), G.Program);
  EvalResult Res = M.run();
  EXPECT_NE(Res.St, EvalResult::Stuck)
      << "seed " << GetParam() << " stuck: " << Res.Why << "\n"
      << printCmd(*G.Program);
}

TEST_P(SoundnessSweep, BigStepAgreesWithSmallStep) {
  GeneratedProgram G = generateWellTyped(GetParam());
  Store SB = G.InitialStore;
  Rho RB;
  EvalResult BRes = bigStep(SB, RB, *G.Program);
  SmallStepper M(G.InitialStore, Rho(), G.Program);
  EvalResult SRes = M.run();
  ASSERT_EQ(BRes.St, SRes.St) << "seed " << GetParam();
  if (BRes.St == EvalResult::OK) {
    EXPECT_EQ(SB, M.store()) << "stores diverge at seed " << GetParam();
    EXPECT_EQ(RB, M.rho()) << "rho diverges at seed " << GetParam();
  }
}

TEST_P(SoundnessSweep, MutantsRespectSoundness) {
  // Adversarial variants: whatever the mutation did, acceptance by the
  // type system must still imply progress to skip (the theorem holds for
  // all terms, not just generator output).
  GeneratedProgram G = generateWellTyped(GetParam());
  for (uint64_t MSeed = 0; MSeed != 4; ++MSeed) {
    CmdP Mutant = mutate(G.Program, GetParam() * 31 + MSeed);
    std::string Why;
    bool Typed = wellTyped(G.MemSigs, *Mutant, &Why);
    SmallStepper M(G.InitialStore, Rho(), Mutant);
    EvalResult Res = M.run();
    if (Typed) {
      EXPECT_NE(Res.St, EvalResult::Stuck)
          << "well-typed mutant stuck (seed " << GetParam() << "/" << MSeed
          << "): " << Res.Why << "\n"
          << printCmd(*Mutant);
    }
    // Ill-typed mutants may or may not get stuck; no obligation.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoundnessSweep,
                         ::testing::Range<uint64_t>(0, 200));

class DeepSoundnessSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeepSoundnessSweep, LargerProgramsStaySound) {
  GenOptions Opts;
  Opts.NumMemories = 6;
  Opts.MemSize = 16;
  Opts.MaxDepth = 8;
  GeneratedProgram G = generateWellTyped(GetParam() + 10'000, Opts);
  std::string Why;
  ASSERT_TRUE(wellTyped(G.MemSigs, *G.Program, &Why)) << Why;
  SmallStepper M(G.InitialStore, Rho(), G.Program);
  EvalResult Res = M.run(1u << 24);
  EXPECT_NE(Res.St, EvalResult::Stuck)
      << "seed " << GetParam() << " stuck: " << Res.Why;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeepSoundnessSweep,
                         ::testing::Range<uint64_t>(0, 50));

TEST(SoundnessDeterminism, GenerationIsSeedDeterministic) {
  GeneratedProgram A = generateWellTyped(42);
  GeneratedProgram B = generateWellTyped(42);
  EXPECT_EQ(printCmd(*A.Program), printCmd(*B.Program));
  EXPECT_EQ(A.InitialStore, B.InitialStore);
}

TEST(SoundnessDeterminism, DifferentSeedsDiffer) {
  GeneratedProgram A = generateWellTyped(1);
  GeneratedProgram B = generateWellTyped(2);
  EXPECT_NE(printCmd(*A.Program), printCmd(*B.Program));
}

} // namespace
