//===- FilamentTest.cpp - Core calculus unit tests --------------*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
// Unit tests for the checked big-step and small-step semantics and the
// core type system of Section 4 / Appendix A.
//
//===----------------------------------------------------------------------===//

#include "filament/Interp.h"
#include "filament/Syntax.h"
#include "filament/TypeSystem.h"

#include <gtest/gtest.h>

using namespace dahlia::filament;

namespace {

Store storeWithMem(const std::string &Name, std::vector<int64_t> Vals) {
  Store S;
  std::vector<Value> V;
  for (int64_t X : Vals)
    V.push_back(Value(X));
  S.Mems[Name] = std::move(V);
  return S;
}

int64_t intVar(const Store &S, const std::string &Name) {
  auto It = S.Vars.find(Name);
  EXPECT_NE(It, S.Vars.end()) << "variable " << Name << " missing";
  if (It == S.Vars.end())
    return INT64_MIN;
  EXPECT_TRUE(std::holds_alternative<int64_t>(It->second));
  return std::get<int64_t>(It->second);
}

//===----------------------------------------------------------------------===//
// Big-step semantics
//===----------------------------------------------------------------------===//

TEST(FilamentBigStep, ArithmeticAndLet) {
  Store S;
  Rho R;
  CmdP C = Cmd::let(
      "x", Expr::binop(Op::Add, Expr::num(2),
                       Expr::binop(Op::Mul, Expr::num(3), Expr::num(4))));
  EXPECT_TRUE(bool(bigStep(S, R, *C)));
  EXPECT_EQ(intVar(S, "x"), 14);
  EXPECT_TRUE(R.empty());
}

TEST(FilamentBigStep, ReadConsumesMemory) {
  Store S = storeWithMem("a", {10, 20, 30});
  Rho R;
  CmdP C = Cmd::let("x", Expr::read("a", Expr::num(1)));
  EXPECT_TRUE(bool(bigStep(S, R, *C)));
  EXPECT_EQ(intVar(S, "x"), 20);
  EXPECT_EQ(R.count("a"), 1u);
}

TEST(FilamentBigStep, SecondAccessGetsStuck) {
  Store S = storeWithMem("a", {1, 2});
  Rho R;
  CmdP C = Cmd::par(Cmd::let("x", Expr::read("a", Expr::num(0))),
                    Cmd::write("a", Expr::num(1), Expr::num(9)));
  EvalResult Res = bigStep(S, R, *C);
  EXPECT_EQ(Res.St, EvalResult::Stuck);
}

TEST(FilamentBigStep, OrderedCompositionRestoresRho) {
  Store S = storeWithMem("a", {1, 2});
  Rho R;
  CmdP C = Cmd::seq(Cmd::let("x", Expr::read("a", Expr::num(0))),
                    Cmd::write("a", Expr::num(1), Expr::num(9)));
  EvalResult Res = bigStep(S, R, *C);
  EXPECT_TRUE(bool(Res)) << Res.Why;
  EXPECT_EQ(std::get<int64_t>(S.Mems["a"][1]), 9);
  // The final rho is the union of the two steps' consumption.
  EXPECT_EQ(R.count("a"), 1u);
}

TEST(FilamentBigStep, OutOfBoundsGetsStuck) {
  Store S = storeWithMem("a", {1, 2});
  Rho R;
  CmdP C = Cmd::expr(Expr::read("a", Expr::num(5)));
  EXPECT_EQ(bigStep(S, R, *C).St, EvalResult::Stuck);
}

TEST(FilamentBigStep, DivisionByZeroGetsStuck) {
  Store S;
  Rho R;
  CmdP C = Cmd::let("x", Expr::binop(Op::Div, Expr::num(1), Expr::num(0)));
  EXPECT_EQ(bigStep(S, R, *C).St, EvalResult::Stuck);
}

TEST(FilamentBigStep, IfBranches) {
  Store S;
  Rho R;
  CmdP C = Cmd::par(
      Cmd::let("x", Expr::num(1)),
      Cmd::ifc(Expr::binop(Op::Lt, Expr::var("x"), Expr::num(5)),
               Cmd::assign("x", Expr::num(100)),
               Cmd::assign("x", Expr::num(-100))));
  EXPECT_TRUE(bool(bigStep(S, R, *C)));
  EXPECT_EQ(intVar(S, "x"), 100);
}

TEST(FilamentBigStep, WhileLoopComputes) {
  // let i = 0; let acc = 0; while (i < 5) { acc := acc + i ; i := i + 1 }
  Store S;
  Rho R;
  CmdP Body =
      Cmd::par(Cmd::assign("acc", Expr::binop(Op::Add, Expr::var("acc"),
                                              Expr::var("i"))),
               Cmd::assign("i", Expr::binop(Op::Add, Expr::var("i"),
                                            Expr::num(1))));
  CmdP C = parAll({Cmd::let("i", Expr::num(0)), Cmd::let("acc", Expr::num(0)),
                   Cmd::whilec(Expr::binop(Op::Lt, Expr::var("i"),
                                           Expr::num(5)),
                               Body)});
  EXPECT_TRUE(bool(bigStep(S, R, *C)));
  EXPECT_EQ(intVar(S, "acc"), 10);
}

TEST(FilamentBigStep, InfiniteLoopRunsOutOfFuel) {
  Store S;
  Rho R;
  CmdP C = Cmd::whilec(Expr::boolean(true), Cmd::skip());
  EXPECT_EQ(bigStep(S, R, *C, /*Fuel=*/1000).St, EvalResult::OutOfFuel);
}

TEST(FilamentBigStep, SequentialWhileOverMemory) {
  // Each while iteration is a fresh time step under ordered composition
  // inside the body: while i<4 { let t = a[i] --- a[i] := t*2 ; i := i+1 }.
  Store S = storeWithMem("a", {1, 2, 3, 4});
  S.Vars["i"] = Value(int64_t(0));
  Rho R;
  CmdP Step = Cmd::seq(
      Cmd::let("t", Expr::read("a", Expr::var("i"))),
      Cmd::par(Cmd::write("a", Expr::var("i"),
                          Expr::binop(Op::Mul, Expr::var("t"), Expr::num(2))),
               Cmd::assign("i", Expr::binop(Op::Add, Expr::var("i"),
                                            Expr::num(1)))));
  // Wrap each iteration in ordered composition with skip so rho resets
  // between iterations.
  CmdP Loop = Cmd::whilec(Expr::binop(Op::Lt, Expr::var("i"), Expr::num(4)),
                          Cmd::seq(Step, Cmd::skip()));
  EvalResult Res = bigStep(S, R, *Loop);
  EXPECT_TRUE(bool(Res)) << Res.Why;
  EXPECT_EQ(std::get<int64_t>(S.Mems["a"][3]), 8);
}

//===----------------------------------------------------------------------===//
// Small-step semantics
//===----------------------------------------------------------------------===//

TEST(FilamentSmallStep, SeqIntroducesIntermediateForm) {
  Store S;
  Rho R;
  SmallStepper M(S, R, Cmd::seq(Cmd::skip(), Cmd::skip()));
  ASSERT_TRUE(M.step());
  EXPECT_EQ(M.cmd()->K, Cmd::SeqInter);
  ASSERT_TRUE(M.step()); // skip ~rho~ skip --> skip
  EXPECT_TRUE(M.done());
}

TEST(FilamentSmallStep, MatchesBigStepOnStraightLine) {
  Store S0 = storeWithMem("a", {5, 6, 7});
  CmdP C = Cmd::seq(Cmd::let("x", Expr::read("a", Expr::num(0))),
                    Cmd::write("a", Expr::num(2),
                               Expr::binop(Op::Add, Expr::var("x"),
                                           Expr::num(1))));
  Store SB = S0;
  Rho RB;
  EXPECT_TRUE(bool(bigStep(SB, RB, *C)));

  SmallStepper M(S0, Rho(), C);
  EvalResult Res = M.run();
  EXPECT_TRUE(bool(Res)) << Res.Why;
  EXPECT_EQ(M.store(), SB);
  EXPECT_EQ(M.rho(), RB);
}

TEST(FilamentSmallStep, StuckOnConflict) {
  Store S = storeWithMem("a", {1, 2});
  CmdP C = Cmd::par(Cmd::expr(Expr::read("a", Expr::num(0))),
                    Cmd::expr(Expr::read("a", Expr::num(1))));
  SmallStepper M(S, Rho(), C);
  EvalResult Res = M.run();
  EXPECT_EQ(Res.St, EvalResult::Stuck);
  EXPECT_NE(Res.Why.find("consumed"), std::string::npos);
}

TEST(FilamentSmallStep, OrderedStepsUseTheSavedContext) {
  // After c1 consumes a, c2 still runs because it steps against the rho
  // captured when the composition was entered.
  Store S = storeWithMem("a", {1, 2});
  CmdP C = Cmd::seq(Cmd::expr(Expr::read("a", Expr::num(0))),
                    Cmd::expr(Expr::read("a", Expr::num(1))));
  SmallStepper M(S, Rho(), C);
  EvalResult Res = M.run();
  EXPECT_TRUE(bool(Res)) << Res.Why;
  EXPECT_EQ(M.rho().count("a"), 1u);
}

TEST(FilamentSmallStep, WhileUnfoldsToIf) {
  Store S;
  SmallStepper M(S, Rho(),
                 Cmd::whilec(Expr::boolean(false), Cmd::skip()));
  ASSERT_TRUE(M.step());
  EXPECT_EQ(M.cmd()->K, Cmd::If);
  EvalResult Res = M.run();
  EXPECT_TRUE(bool(Res));
}

//===----------------------------------------------------------------------===//
// Core type system
//===----------------------------------------------------------------------===//

TEST(FilamentTypes, AcceptsStraightLine) {
  std::map<std::string, int64_t> Sigs = {{"a", 4}};
  CmdP C = Cmd::let("x", Expr::read("a", Expr::num(0)));
  std::string Why;
  EXPECT_TRUE(wellTyped(Sigs, *C, &Why)) << Why;
}

TEST(FilamentTypes, RejectsDoubleAccess) {
  std::map<std::string, int64_t> Sigs = {{"a", 4}};
  CmdP C = Cmd::par(Cmd::let("x", Expr::read("a", Expr::num(0))),
                    Cmd::let("y", Expr::read("a", Expr::num(1))));
  std::string Why;
  EXPECT_FALSE(wellTyped(Sigs, *C, &Why));
  EXPECT_NE(Why.find("consumed"), std::string::npos);
}

TEST(FilamentTypes, OrderedCompositionRestores) {
  std::map<std::string, int64_t> Sigs = {{"a", 4}};
  CmdP C = Cmd::seq(Cmd::let("x", Expr::read("a", Expr::num(0))),
                    Cmd::let("y", Expr::read("a", Expr::num(1))));
  std::string Why;
  EXPECT_TRUE(wellTyped(Sigs, *C, &Why)) << Why;
}

TEST(FilamentTypes, SeqResidueIsIntersection) {
  // After {read a --- read b}, neither a nor b is available.
  std::map<std::string, int64_t> Sigs = {{"a", 4}, {"b", 4}};
  CmdP Inner = Cmd::seq(Cmd::let("x", Expr::read("a", Expr::num(0))),
                        Cmd::let("y", Expr::read("b", Expr::num(0))));
  CmdP UseA = Cmd::par(Inner, Cmd::let("z", Expr::read("a", Expr::num(1))));
  CmdP UseB = Cmd::par(Inner, Cmd::let("z", Expr::read("b", Expr::num(1))));
  EXPECT_FALSE(wellTyped(Sigs, *UseA));
  EXPECT_FALSE(wellTyped(Sigs, *UseB));
}

TEST(FilamentTypes, RebindingRejected) {
  std::map<std::string, int64_t> Sigs;
  CmdP C = Cmd::par(Cmd::let("x", Expr::num(1)),
                    Cmd::let("x", Expr::num(2)));
  EXPECT_FALSE(wellTyped(Sigs, *C));
}

TEST(FilamentTypes, AssignTypeMismatch) {
  std::map<std::string, int64_t> Sigs;
  CmdP C = Cmd::par(Cmd::let("x", Expr::num(1)),
                    Cmd::assign("x", Expr::boolean(true)));
  EXPECT_FALSE(wellTyped(Sigs, *C));
}

TEST(FilamentTypes, BranchConsumptionIntersects) {
  std::map<std::string, int64_t> Sigs = {{"a", 4}};
  CmdP C = Cmd::par(
      Cmd::ifc(Expr::boolean(true),
               Cmd::expr(Expr::read("a", Expr::num(0))), Cmd::skip()),
      Cmd::expr(Expr::read("a", Expr::num(1))));
  EXPECT_FALSE(wellTyped(Sigs, *C));
}

TEST(FilamentTypes, WhileBodyChecked) {
  std::map<std::string, int64_t> Sigs = {{"a", 4}};
  CmdP Bad = Cmd::whilec(
      Expr::boolean(false),
      Cmd::par(Cmd::expr(Expr::read("a", Expr::num(0))),
               Cmd::expr(Expr::read("a", Expr::num(1)))));
  EXPECT_FALSE(wellTyped(Sigs, *Bad));
}

TEST(FilamentTypes, PrintingIsStable) {
  CmdP C = Cmd::seq(Cmd::let("x", Expr::read("a", Expr::num(0))),
                    Cmd::write("a", Expr::num(1), Expr::var("x")));
  EXPECT_EQ(printCmd(*C), "{let x = a[0] --- a[1] := x}");
}

} // namespace
