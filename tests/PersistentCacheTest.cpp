//===- PersistentCacheTest.cpp - On-disk memo cache tests -------*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
// The robustness contract of service::PersistentCache (format v4,
// sharded): round-trips are lossless, saves union with what concurrent
// writers already published, a version mismatch or truncated/corrupt
// shard loads as empty without taking the healthy shards down, legacy
// single-file caches rebuild cleanly, concurrent readers and in-process
// concurrent savers are safe, and the entry cap evicts deterministically.
//
//===----------------------------------------------------------------------===//

#include "service/PersistentCache.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

using namespace dahlia;
using namespace dahlia::dse;
using namespace dahlia::service;

namespace fs = std::filesystem;

namespace {

class PersistentCacheTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = (fs::temp_directory_path() /
           ("dahlia-pcache-test-" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "-" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name()))
              .string();
    fs::remove_all(Dir);
  }
  void TearDown() override { fs::remove_all(Dir); }

  /// Options pinning one shard: the exact single-file semantics (used by
  /// the truncation/corruption/eviction tests that poke file internals).
  static PersistentCacheOptions oneShard() {
    PersistentCacheOptions O;
    O.Shards = 1;
    return O;
  }

  /// Every existing shard file under \p Dir.
  static std::vector<std::string> shardFiles(const std::string &Dir) {
    std::vector<std::string> Files;
    std::error_code EC;
    for (fs::directory_iterator It(Dir, EC), End; !EC && It != End;
         It.increment(EC)) {
      fs::path Memo = It->path() / "memo.bin";
      if (It->is_directory() && fs::exists(Memo))
        Files.push_back(Memo.string());
    }
    return Files;
  }

  /// True when any *.tmp litter exists anywhere under \p Dir.
  static bool anyTmpFiles(const std::string &Dir) {
    std::error_code EC;
    for (fs::recursive_directory_iterator It(Dir, EC), End; !EC && It != End;
         It.increment(EC))
      if (It->path().extension() == ".tmp")
        return true;
    return false;
  }

  std::string Dir;
};

hlsim::Estimate estimateFor(uint64_t I) {
  hlsim::Estimate E;
  E.Cycles = static_cast<double>(I) * 3 + 1;
  E.RuntimeMs = static_cast<double>(I) * 0.5;
  E.Lut = static_cast<int64_t>(I * 7);
  E.Ff = static_cast<int64_t>(I * 11);
  E.Bram = static_cast<int64_t>(I % 5);
  E.Dsp = static_cast<int64_t>(I % 3);
  E.LutMem = static_cast<int64_t>(I % 17);
  E.II = 1.0 + static_cast<double>(I % 4);
  E.Incorrect = I % 7 == 0;
  E.Predictable = I % 2 == 0;
  return E;
}

/// Fills \p C with \p NumVerdicts verdicts and \p NumEstimates estimates.
/// (DseCache is neither copyable nor movable — mutexes and atomics.)
void fillCache(DseCache &C, size_t NumVerdicts, size_t NumEstimates,
               uint64_t KeyBase = 0) {
  for (size_t I = 0; I != NumVerdicts; ++I)
    C.insertVerdict(KeyBase + 1000 + I, I % 3 == 0);
  for (size_t I = 0; I != NumEstimates; ++I)
    C.insertEstimate(KeyBase + 9000 + I, estimateFor(I));
}

/// Builds a filled cache and saves it through \p P.
bool saveCache(const PersistentCache &P, size_t NumVerdicts,
               size_t NumEstimates, uint64_t KeyBase = 0) {
  DseCache C;
  fillCache(C, NumVerdicts, NumEstimates, KeyBase);
  return P.save(C);
}

bool equalEstimates(const hlsim::Estimate &A, const hlsim::Estimate &B) {
  return A.Cycles == B.Cycles && A.RuntimeMs == B.RuntimeMs &&
         A.Lut == B.Lut && A.Ff == B.Ff && A.Bram == B.Bram &&
         A.Dsp == B.Dsp && A.LutMem == B.LutMem && A.II == B.II &&
         A.Incorrect == B.Incorrect && A.Predictable == B.Predictable;
}

TEST_F(PersistentCacheTest, RoundTripIsLossless) {
  DseCache Original;
  fillCache(Original, 100, 40);
  PersistentCache P(Dir);
  ASSERT_TRUE(P.save(Original));
  EXPECT_FALSE(shardFiles(Dir).empty());
  // Temp files never survive a completed save.
  EXPECT_FALSE(anyTmpFiles(Dir));

  DseCache Loaded;
  PersistentCacheLoadStats Stats;
  ASSERT_TRUE(P.load(Loaded, &Stats));
  EXPECT_EQ(Stats.Verdicts, 100u);
  EXPECT_EQ(Stats.Estimates, 40u);
  EXPECT_GT(Stats.ShardsLoaded, 0u);

  for (size_t I = 0; I != 100; ++I) {
    bool Accepted = false;
    ASSERT_TRUE(Loaded.lookupVerdict(1000 + I, Accepted)) << I;
    EXPECT_EQ(Accepted, I % 3 == 0) << I;
  }
  for (size_t I = 0; I != 40; ++I) {
    hlsim::Estimate E;
    ASSERT_TRUE(Loaded.lookupEstimate(9000 + I, E)) << I;
    EXPECT_TRUE(equalEstimates(E, estimateFor(I))) << I;
  }
}

TEST_F(PersistentCacheTest, ShardedLayoutSpreadsEntries) {
  PersistentCache P(Dir); // Default stripe count (8).
  ASSERT_EQ(P.shardCount(), 8u);
  ASSERT_TRUE(saveCache(P, 64, 64));
  // Sequential keys modulo 8 land in every stripe.
  EXPECT_EQ(shardFiles(Dir).size(), 8u);
  // An entry's shard path is deterministic and inside the directory.
  EXPECT_EQ(P.shardPathFor(1000), P.shardPath(1000 % 8));

  DseCache Loaded;
  PersistentCacheLoadStats Stats;
  ASSERT_TRUE(P.load(Loaded, &Stats));
  EXPECT_EQ(Stats.ShardsLoaded, 8u);
  EXPECT_EQ(Stats.Verdicts, 64u);
  EXPECT_EQ(Stats.Estimates, 64u);
}

TEST_F(PersistentCacheTest, MissingFileLoadsAsEmpty) {
  PersistentCache P(Dir);
  DseCache Into;
  EXPECT_FALSE(P.load(Into));
  EXPECT_EQ(Into.verdictCount(), 0u);
}

TEST_F(PersistentCacheTest, VersionMismatchTriggersCleanRebuild) {
  {
    PersistentCacheOptions Old;
    Old.Version = 1;
    PersistentCache P(Dir, Old);
    ASSERT_TRUE(saveCache(P, 10, 5));
  }
  // A reader expecting a newer format ignores the old files...
  PersistentCacheOptions New;
  New.Version = 2;
  PersistentCache P2(Dir, New);
  DseCache Into;
  EXPECT_FALSE(P2.load(Into));
  EXPECT_EQ(Into.verdictCount(), 0u);
  EXPECT_EQ(Into.estimateCount(), 0u);

  // ...and its next save rebuilds them in the new format (union-on-save
  // cannot resurrect mismatched entries: they fail validation).
  ASSERT_TRUE(saveCache(P2, 3, 2));
  DseCache Fresh;
  PersistentCacheLoadStats Stats;
  ASSERT_TRUE(P2.load(Fresh, &Stats));
  EXPECT_EQ(Stats.Verdicts, 3u);
  EXPECT_EQ(Stats.Estimates, 2u);
}

TEST_F(PersistentCacheTest, LegacyRootFileIsIgnoredAndRemovedOnSave) {
  // A v3-era cache was a single memo.bin at the directory root.
  fs::create_directories(Dir);
  {
    std::ofstream Out(fs::path(Dir) / "memo.bin", std::ios::binary);
    Out << "DAHC-v3-era payload that v4 must not read";
  }
  PersistentCache P(Dir);
  DseCache Into;
  EXPECT_FALSE(P.load(Into)); // No shard dirs: nothing to serve.
  EXPECT_EQ(Into.verdictCount(), 0u);

  ASSERT_TRUE(saveCache(P, 4, 2));
  EXPECT_FALSE(fs::exists(fs::path(Dir) / "memo.bin"));
  EXPECT_FALSE(shardFiles(Dir).empty());
}

TEST_F(PersistentCacheTest, TruncatedFileIsIgnoredWithoutCrashing) {
  PersistentCache P(Dir, oneShard());
  ASSERT_TRUE(saveCache(P, 50, 20));
  std::string Path = P.shardPath(0);
  auto FullSize = fs::file_size(Path);

  // Truncate at every interesting boundary plus a sweep of prefixes.
  std::string Full;
  {
    std::ifstream In(Path, std::ios::binary);
    Full.assign((std::istreambuf_iterator<char>(In)),
                std::istreambuf_iterator<char>());
  }
  ASSERT_EQ(Full.size(), FullSize);
  for (size_t Keep :
       {size_t(0), size_t(3), size_t(4), size_t(7), size_t(8), size_t(15),
        size_t(16), Full.size() / 2, Full.size() - 1}) {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(Full.data(), static_cast<std::streamsize>(Keep));
    Out.close();
    DseCache Into;
    EXPECT_FALSE(P.load(Into)) << "kept " << Keep << " bytes";
    EXPECT_EQ(Into.verdictCount(), 0u) << Keep;
  }
}

TEST_F(PersistentCacheTest, CorruptPayloadIsIgnoredWithoutCrashing) {
  PersistentCache P(Dir, oneShard());
  ASSERT_TRUE(saveCache(P, 50, 20));
  std::string Path = P.shardPath(0);
  std::string Full;
  {
    std::ifstream In(Path, std::ios::binary);
    Full.assign((std::istreambuf_iterator<char>(In)),
                std::istreambuf_iterator<char>());
  }
  // Flip one byte in the middle (a record), one in the counts, and one in
  // the checksum itself.
  for (size_t Victim : {Full.size() / 2, size_t(9), Full.size() - 4}) {
    std::string Bad = Full;
    Bad[Victim] = static_cast<char>(Bad[Victim] ^ 0x5a);
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(Bad.data(), static_cast<std::streamsize>(Bad.size()));
    Out.close();
    DseCache Into;
    EXPECT_FALSE(P.load(Into)) << "flipped byte " << Victim;
    EXPECT_EQ(Into.verdictCount(), 0u) << Victim;
  }

  // Garbage that is not even the right magic.
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << "this is not a cache file at all, but it is long enough to parse";
  Out.close();
  DseCache Into;
  EXPECT_FALSE(P.load(Into));
}

TEST_F(PersistentCacheTest, CorruptShardLeavesOthersServing) {
  PersistentCache P(Dir); // 8 stripes.
  ASSERT_TRUE(saveCache(P, 64, 0));

  // Scribble over the shard holding key 1000; its 8 entries vanish, the
  // other 56 still serve (a memo cache is correct under any subset).
  {
    std::ofstream Out(P.shardPathFor(1000),
                      std::ios::binary | std::ios::trunc);
    Out << "scribble";
  }
  DseCache Into;
  PersistentCacheLoadStats Stats;
  ASSERT_TRUE(P.load(Into, &Stats));
  EXPECT_EQ(Stats.ShardsLoaded, 7u);
  EXPECT_EQ(Stats.Verdicts, 56u);
  bool Accepted = false;
  EXPECT_FALSE(Into.lookupVerdict(1000, Accepted));
  EXPECT_TRUE(Into.lookupVerdict(1001, Accepted));

  // The next save heals the scribbled stripe.
  ASSERT_TRUE(saveCache(P, 64, 0));
  DseCache Healed;
  ASSERT_TRUE(P.load(Healed, &Stats));
  EXPECT_EQ(Stats.ShardsLoaded, 8u);
  EXPECT_EQ(Stats.Verdicts, 64u);
}

TEST_F(PersistentCacheTest, ShrinkingShardCountMergesStaleStripes) {
  // A writer with more stripes published entries into shard-04..15; a
  // later writer with fewer stripes must fold them into its partition,
  // not delete them.
  PersistentCacheOptions Big;
  Big.Shards = 16;
  ASSERT_TRUE(saveCache(PersistentCache(Dir, Big), 32, 16));

  PersistentCacheOptions Small;
  Small.Shards = 4;
  PersistentCache P(Dir, Small);
  ASSERT_TRUE(saveCache(P, 8, 4, /*KeyBase=*/100000));

  DseCache Loaded;
  PersistentCacheLoadStats Stats;
  ASSERT_TRUE(P.load(Loaded, &Stats));
  EXPECT_EQ(Stats.Verdicts, 32u + 8u);
  EXPECT_EQ(Stats.Estimates, 16u + 4u);
  bool Accepted = false;
  EXPECT_TRUE(Loaded.lookupVerdict(1031, Accepted)); // From the 16-stripe run.
  EXPECT_TRUE(Loaded.lookupVerdict(101007, Accepted));
  // The stale stripes are gone once their contents migrated.
  EXPECT_EQ(shardFiles(Dir).size(), 4u);
}

TEST_F(PersistentCacheTest, UnionOnSaveMergesDisjointWriters) {
  // Two handles over the same directory, as two processes would hold.
  PersistentCache A(Dir), B(Dir);
  ASSERT_TRUE(saveCache(A, 20, 10, /*KeyBase=*/0));
  ASSERT_TRUE(saveCache(B, 20, 10, /*KeyBase=*/100000));

  // B's save merged with A's published entries instead of clobbering.
  DseCache Loaded;
  PersistentCacheLoadStats Stats;
  ASSERT_TRUE(PersistentCache(Dir).load(Loaded, &Stats));
  EXPECT_EQ(Stats.Verdicts, 40u);
  EXPECT_EQ(Stats.Estimates, 20u);
  bool Accepted = false;
  EXPECT_TRUE(Loaded.lookupVerdict(1000, Accepted));
  EXPECT_TRUE(Loaded.lookupVerdict(101000, Accepted));
}

TEST_F(PersistentCacheTest, ConcurrentReadersAgree) {
  PersistentCache P(Dir);
  ASSERT_TRUE(saveCache(P, 500, 200));

  constexpr unsigned NumReaders = 8;
  std::vector<DseCache> Caches(NumReaders);
  // Plain ints, not vector<bool>: adjacent bit-packed writes from
  // different threads are a (harmless-looking but real) data race.
  std::vector<int> LoadOk(NumReaders, 0);
  std::vector<std::thread> Readers;
  for (unsigned T = 0; T != NumReaders; ++T)
    Readers.emplace_back([&, T] { LoadOk[T] = P.load(Caches[T]); });
  for (std::thread &T : Readers)
    T.join();

  for (unsigned T = 0; T != NumReaders; ++T) {
    ASSERT_TRUE(LoadOk[T]) << T;
    EXPECT_EQ(Caches[T].verdictCount(), 500u) << T;
    EXPECT_EQ(Caches[T].estimateCount(), 200u) << T;
  }
}

TEST_F(PersistentCacheTest, ConcurrentSaversUnionThroughStripeLocks) {
  // One handle, many threads, disjoint key ranges: the stripe locks
  // serialize the per-shard read-union-write, so every range survives.
  PersistentCache P(Dir);
  constexpr unsigned NumSavers = 4;
  std::vector<std::thread> Savers;
  std::vector<int> SaveOk(NumSavers, 0);
  for (unsigned T = 0; T != NumSavers; ++T)
    Savers.emplace_back([&, T] {
      DseCache C;
      fillCache(C, 50, 25, /*KeyBase=*/T * 100000);
      SaveOk[T] = P.save(C);
    });
  for (std::thread &T : Savers)
    T.join();
  for (unsigned T = 0; T != NumSavers; ++T)
    EXPECT_TRUE(SaveOk[T]) << T;

  DseCache Loaded;
  PersistentCacheLoadStats Stats;
  ASSERT_TRUE(P.load(Loaded, &Stats));
  EXPECT_EQ(Stats.Verdicts, 50u * NumSavers);
  EXPECT_EQ(Stats.Estimates, 25u * NumSavers);
}

TEST_F(PersistentCacheTest, EvictionCapKeepsVerdictsOverEstimates) {
  PersistentCacheOptions O = oneShard();
  O.MaxEntries = 60;
  PersistentCache P(Dir, O);
  ASSERT_TRUE(saveCache(P, 50, 30)); // 80 entries > cap 60.

  DseCache Loaded;
  PersistentCacheLoadStats Stats;
  ASSERT_TRUE(P.load(Loaded, &Stats));
  EXPECT_EQ(Stats.Verdicts, 50u); // All verdicts survive...
  EXPECT_EQ(Stats.Estimates, 10u); // ...estimates absorb the eviction.

  // Eviction is deterministic: the lowest-keyed estimates survive.
  for (uint64_t I = 0; I != 10; ++I) {
    hlsim::Estimate E;
    EXPECT_TRUE(Loaded.lookupEstimate(9000 + I, E)) << I;
  }
  hlsim::Estimate E;
  EXPECT_FALSE(Loaded.lookupEstimate(9000 + 10, E));

  // A cap smaller than the verdict count truncates verdicts too. (A
  // fresh directory: union-on-save would otherwise resurrect survivors.)
  fs::remove_all(Dir);
  PersistentCacheOptions Tiny = oneShard();
  Tiny.MaxEntries = 20;
  PersistentCache P2(Dir, Tiny);
  ASSERT_TRUE(saveCache(P2, 50, 30));
  DseCache Small;
  ASSERT_TRUE(P2.load(Small, &Stats));
  EXPECT_EQ(Stats.Verdicts, 20u);
  EXPECT_EQ(Stats.Estimates, 0u);
}

TEST_F(PersistentCacheTest, SaveOverwritesAtomically) {
  PersistentCache P(Dir, oneShard());
  ASSERT_TRUE(saveCache(P, 10, 0));
  ASSERT_TRUE(saveCache(P, 25, 5)); // Larger snapshot over smaller.
  DseCache Loaded;
  PersistentCacheLoadStats Stats;
  ASSERT_TRUE(P.load(Loaded, &Stats));
  EXPECT_EQ(Stats.Verdicts, 25u);
  EXPECT_EQ(Stats.Estimates, 5u);
  EXPECT_FALSE(anyTmpFiles(Dir));
}

} // namespace
