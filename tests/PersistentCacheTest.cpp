//===- PersistentCacheTest.cpp - On-disk memo cache tests -------*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
// The robustness contract of service::PersistentCache: round-trips are
// lossless, a version mismatch or truncated/corrupt file loads as empty
// (clean rebuild, no crash), concurrent readers are safe, and the entry
// cap evicts deterministically.
//
//===----------------------------------------------------------------------===//

#include "service/PersistentCache.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

using namespace dahlia;
using namespace dahlia::dse;
using namespace dahlia::service;

namespace fs = std::filesystem;

namespace {

class PersistentCacheTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = (fs::temp_directory_path() /
           ("dahlia-pcache-test-" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "-" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name()))
              .string();
    fs::remove_all(Dir);
  }
  void TearDown() override { fs::remove_all(Dir); }

  std::string Dir;
};

hlsim::Estimate estimateFor(uint64_t I) {
  hlsim::Estimate E;
  E.Cycles = static_cast<double>(I) * 3 + 1;
  E.RuntimeMs = static_cast<double>(I) * 0.5;
  E.Lut = static_cast<int64_t>(I * 7);
  E.Ff = static_cast<int64_t>(I * 11);
  E.Bram = static_cast<int64_t>(I % 5);
  E.Dsp = static_cast<int64_t>(I % 3);
  E.LutMem = static_cast<int64_t>(I % 17);
  E.II = 1.0 + static_cast<double>(I % 4);
  E.Incorrect = I % 7 == 0;
  E.Predictable = I % 2 == 0;
  return E;
}

/// Fills \p C with \p NumVerdicts verdicts and \p NumEstimates estimates.
/// (DseCache is neither copyable nor movable — mutexes and atomics.)
void fillCache(DseCache &C, size_t NumVerdicts, size_t NumEstimates) {
  for (size_t I = 0; I != NumVerdicts; ++I)
    C.insertVerdict(1000 + I, I % 3 == 0);
  for (size_t I = 0; I != NumEstimates; ++I)
    C.insertEstimate(9000 + I, estimateFor(I));
}

/// Builds a filled cache and saves it through \p P.
bool saveCache(const PersistentCache &P, size_t NumVerdicts,
               size_t NumEstimates) {
  DseCache C;
  fillCache(C, NumVerdicts, NumEstimates);
  return P.save(C);
}

bool equalEstimates(const hlsim::Estimate &A, const hlsim::Estimate &B) {
  return A.Cycles == B.Cycles && A.RuntimeMs == B.RuntimeMs &&
         A.Lut == B.Lut && A.Ff == B.Ff && A.Bram == B.Bram &&
         A.Dsp == B.Dsp && A.LutMem == B.LutMem && A.II == B.II &&
         A.Incorrect == B.Incorrect && A.Predictable == B.Predictable;
}

TEST_F(PersistentCacheTest, RoundTripIsLossless) {
  DseCache Original;
  fillCache(Original, 100, 40);
  PersistentCache P(Dir);
  ASSERT_TRUE(P.save(Original));
  ASSERT_TRUE(fs::exists(P.path()));
  // The temp file never survives a completed save.
  EXPECT_FALSE(fs::exists(P.path() + ".tmp"));

  DseCache Loaded;
  PersistentCacheLoadStats Stats;
  ASSERT_TRUE(P.load(Loaded, &Stats));
  EXPECT_EQ(Stats.Verdicts, 100u);
  EXPECT_EQ(Stats.Estimates, 40u);

  for (size_t I = 0; I != 100; ++I) {
    bool Accepted = false;
    ASSERT_TRUE(Loaded.lookupVerdict(1000 + I, Accepted)) << I;
    EXPECT_EQ(Accepted, I % 3 == 0) << I;
  }
  for (size_t I = 0; I != 40; ++I) {
    hlsim::Estimate E;
    ASSERT_TRUE(Loaded.lookupEstimate(9000 + I, E)) << I;
    EXPECT_TRUE(equalEstimates(E, estimateFor(I))) << I;
  }
}

TEST_F(PersistentCacheTest, MissingFileLoadsAsEmpty) {
  PersistentCache P(Dir);
  DseCache Into;
  EXPECT_FALSE(P.load(Into));
  EXPECT_EQ(Into.verdictCount(), 0u);
}

TEST_F(PersistentCacheTest, VersionMismatchTriggersCleanRebuild) {
  {
    PersistentCacheOptions Old;
    Old.Version = 1;
    PersistentCache P(Dir, Old);
    ASSERT_TRUE(saveCache(P, 10, 5));
  }
  // A reader expecting a newer format ignores the old file...
  PersistentCacheOptions New;
  New.Version = 2;
  PersistentCache P2(Dir, New);
  DseCache Into;
  EXPECT_FALSE(P2.load(Into));
  EXPECT_EQ(Into.verdictCount(), 0u);
  EXPECT_EQ(Into.estimateCount(), 0u);

  // ...and its next save rebuilds the file in the new format.
  ASSERT_TRUE(saveCache(P2, 3, 2));
  DseCache Fresh;
  PersistentCacheLoadStats Stats;
  ASSERT_TRUE(P2.load(Fresh, &Stats));
  EXPECT_EQ(Stats.Verdicts, 3u);
  EXPECT_EQ(Stats.Estimates, 2u);
}

TEST_F(PersistentCacheTest, TruncatedFileIsIgnoredWithoutCrashing) {
  PersistentCache P(Dir);
  ASSERT_TRUE(saveCache(P, 50, 20));
  auto FullSize = fs::file_size(P.path());

  // Truncate at every interesting boundary plus a sweep of prefixes.
  std::string Full;
  {
    std::ifstream In(P.path(), std::ios::binary);
    Full.assign((std::istreambuf_iterator<char>(In)),
                std::istreambuf_iterator<char>());
  }
  ASSERT_EQ(Full.size(), FullSize);
  for (size_t Keep :
       {size_t(0), size_t(3), size_t(4), size_t(7), size_t(8), size_t(15),
        size_t(16), Full.size() / 2, Full.size() - 1}) {
    std::ofstream Out(P.path(), std::ios::binary | std::ios::trunc);
    Out.write(Full.data(), static_cast<std::streamsize>(Keep));
    Out.close();
    DseCache Into;
    EXPECT_FALSE(P.load(Into)) << "kept " << Keep << " bytes";
    EXPECT_EQ(Into.verdictCount(), 0u) << Keep;
  }
}

TEST_F(PersistentCacheTest, CorruptPayloadIsIgnoredWithoutCrashing) {
  PersistentCache P(Dir);
  ASSERT_TRUE(saveCache(P, 50, 20));
  std::string Full;
  {
    std::ifstream In(P.path(), std::ios::binary);
    Full.assign((std::istreambuf_iterator<char>(In)),
                std::istreambuf_iterator<char>());
  }
  // Flip one byte in the middle (a record), one in the counts, and one in
  // the checksum itself.
  for (size_t Victim : {Full.size() / 2, size_t(9), Full.size() - 4}) {
    std::string Bad = Full;
    Bad[Victim] = static_cast<char>(Bad[Victim] ^ 0x5a);
    std::ofstream Out(P.path(), std::ios::binary | std::ios::trunc);
    Out.write(Bad.data(), static_cast<std::streamsize>(Bad.size()));
    Out.close();
    DseCache Into;
    EXPECT_FALSE(P.load(Into)) << "flipped byte " << Victim;
    EXPECT_EQ(Into.verdictCount(), 0u) << Victim;
  }

  // Garbage that is not even the right magic.
  std::ofstream Out(P.path(), std::ios::binary | std::ios::trunc);
  Out << "this is not a cache file at all, but it is long enough to parse";
  Out.close();
  DseCache Into;
  EXPECT_FALSE(P.load(Into));
}

TEST_F(PersistentCacheTest, ConcurrentReadersAgree) {
  PersistentCache P(Dir);
  ASSERT_TRUE(saveCache(P, 500, 200));

  constexpr unsigned NumReaders = 8;
  std::vector<DseCache> Caches(NumReaders);
  std::vector<bool> LoadOk(NumReaders, false);
  std::vector<std::thread> Readers;
  for (unsigned T = 0; T != NumReaders; ++T)
    Readers.emplace_back([&, T] { LoadOk[T] = P.load(Caches[T]); });
  for (std::thread &T : Readers)
    T.join();

  for (unsigned T = 0; T != NumReaders; ++T) {
    ASSERT_TRUE(LoadOk[T]) << T;
    EXPECT_EQ(Caches[T].verdictCount(), 500u) << T;
    EXPECT_EQ(Caches[T].estimateCount(), 200u) << T;
  }
}

TEST_F(PersistentCacheTest, EvictionCapKeepsVerdictsOverEstimates) {
  PersistentCacheOptions O;
  O.MaxEntries = 60;
  PersistentCache P(Dir, O);
  ASSERT_TRUE(saveCache(P, 50, 30)); // 80 entries > cap 60.

  DseCache Loaded;
  PersistentCacheLoadStats Stats;
  ASSERT_TRUE(P.load(Loaded, &Stats));
  EXPECT_EQ(Stats.Verdicts, 50u); // All verdicts survive...
  EXPECT_EQ(Stats.Estimates, 10u); // ...estimates absorb the eviction.

  // Eviction is deterministic: the lowest-keyed estimates survive.
  for (uint64_t I = 0; I != 10; ++I) {
    hlsim::Estimate E;
    EXPECT_TRUE(Loaded.lookupEstimate(9000 + I, E)) << I;
  }
  hlsim::Estimate E;
  EXPECT_FALSE(Loaded.lookupEstimate(9000 + 10, E));

  // A cap smaller than the verdict count truncates verdicts too.
  PersistentCacheOptions Tiny;
  Tiny.MaxEntries = 20;
  PersistentCache P2(Dir, Tiny);
  ASSERT_TRUE(saveCache(P2, 50, 30));
  DseCache Small;
  ASSERT_TRUE(P2.load(Small, &Stats));
  EXPECT_EQ(Stats.Verdicts, 20u);
  EXPECT_EQ(Stats.Estimates, 0u);
}

TEST_F(PersistentCacheTest, SaveOverwritesAtomically) {
  PersistentCache P(Dir);
  ASSERT_TRUE(saveCache(P, 10, 0));
  ASSERT_TRUE(saveCache(P, 25, 5)); // Larger snapshot over smaller.
  DseCache Loaded;
  PersistentCacheLoadStats Stats;
  ASSERT_TRUE(P.load(Loaded, &Stats));
  EXPECT_EQ(Stats.Verdicts, 25u);
  EXPECT_EQ(Stats.Estimates, 5u);
  EXPECT_FALSE(fs::exists(P.path() + ".tmp"));
}

} // namespace
