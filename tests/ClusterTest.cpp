//===- ClusterTest.cpp - Distributed DSE coordinator tests ------*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
// The cluster contract: a coordinator driving N TCP workers through M
// hash-partitioned shards produces a Pareto front bit-identical to one
// in-process exhaustive sweep — at 1/2/4 workers, at uneven shard
// counts, and under injected faults (a worker killed mid-stream, a
// worker stalled past the shard timeout, truncated frames, hostile chunk
// streams). Faults must surface as retry/reassign/worker-dead journal
// records and still converge to the exact front; a duplicate completion
// whose fingerprint disagrees must fail the run loudly. Cache syncing
// converges a fleet to all-hit.
//
//===----------------------------------------------------------------------===//

#include "cluster/Cluster.h"
#include "cluster/FaultInject.h"

#include "service/ServiceClient.h"
#include "service/TcpServer.h"
#include "support/EventLog.h"
#include "support/Socket.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>

using namespace dahlia;
using namespace dahlia::cluster;

namespace {

constexpr const char *kSpace = "gemm-blocked";

/// A fleet of honest in-process TCP workers (real TcpServer over a real
/// CompileService each, like N `dahlia-serve` processes).
struct Fleet {
  std::vector<std::unique_ptr<service::CompileService>> Svcs;
  std::vector<std::unique_ptr<service::TcpServer>> Servers;
  std::vector<std::thread> Loops;

  bool add(size_t N) {
    for (size_t I = 0; I != N; ++I) {
      service::ServiceOptions SO;
      SO.Threads = 2;
      Svcs.push_back(std::make_unique<service::CompileService>(SO));
      Servers.push_back(std::make_unique<service::TcpServer>(*Svcs.back()));
      if (!Servers.back()->start())
        return false;
      service::TcpServer *S = Servers.back().get();
      Loops.emplace_back([S] { S->run(); });
    }
    return true;
  }

  std::vector<WorkerSpec> specs() const {
    std::vector<WorkerSpec> Ws;
    for (const auto &S : Servers) {
      WorkerSpec W;
      W.Port = S->port();
      Ws.push_back(W);
    }
    return Ws;
  }

  ~Fleet() {
    for (auto &S : Servers)
      S->stop();
    for (std::thread &T : Loops)
      T.join();
  }
};

ClusterOptions baseOptions(size_t Limit) {
  ClusterOptions O;
  O.Space = kSpace;
  O.Limit = Limit;
  O.SweepThreads = 2;
  O.ShardTimeoutMs = 30000;
  O.RetryBackoffMs = 5;
  return O;
}

/// The in-process single-machine reference: one unsharded exhaustive
/// sweep of the same space.
Json singleMachineSweep(size_t Limit) {
  service::ServiceOptions SO;
  SO.Threads = 2;
  service::CompileService Svc(SO);
  service::ServiceClient C(Svc);
  service::Request R;
  R.Kind = service::Op::DseSweep;
  R.Space = kSpace;
  R.Limit = Limit;
  R.Threads = 2;
  service::ClientResponse Resp = C.call(std::move(R));
  EXPECT_TRUE(Resp.R.Ok);
  return Resp.Raw.at("sweep");
}

void expectMatchesReference(const ClusterResult &R, const Json &Ref) {
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
  EXPECT_EQ(R.FrontHash, Ref.at("front_hash").asString());
  EXPECT_EQ(dse::indicesToJson(R.Fronts.Front).dump(),
            Ref.at("front").dump());
  EXPECT_EQ(dse::indicesToJson(R.Fronts.AcceptedFront).dump(),
            Ref.at("accepted_front").dump());
  EXPECT_EQ(R.Stats.Explored,
            static_cast<size_t>(Ref.at("explored").asInt()));
}

bool journalHasKind(const std::vector<std::string> &Lines, const char *Kind) {
  std::string Needle = std::string("\"kind\":\"") + Kind + "\"";
  for (const std::string &L : Lines)
    if (L.find(Needle) != std::string::npos)
      return true;
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Worker-list parsing
//===----------------------------------------------------------------------===//

TEST(ClusterConfig, ParseWorkerList) {
  std::string Err;
  auto Ws = parseWorkerList("9001,localhost:9002,127.0.0.1:9003", &Err);
  ASSERT_TRUE(Ws.has_value()) << Err;
  ASSERT_EQ(Ws->size(), 3u);
  EXPECT_EQ((*Ws)[0].Host, "127.0.0.1");
  EXPECT_EQ((*Ws)[0].Port, 9001);
  EXPECT_EQ((*Ws)[1].Host, "localhost");
  EXPECT_EQ((*Ws)[1].Port, 9002);
  EXPECT_EQ((*Ws)[2].Port, 9003);

  EXPECT_FALSE(parseWorkerList("", &Err).has_value());
  EXPECT_FALSE(parseWorkerList("9001,,9002", &Err).has_value());
  EXPECT_FALSE(parseWorkerList("9001,abc", &Err).has_value());
  EXPECT_FALSE(parseWorkerList("0", &Err).has_value());
  EXPECT_FALSE(parseWorkerList("99999", &Err).has_value());
  // Loopback only: a coordinator must not be pointable off-machine.
  EXPECT_FALSE(parseWorkerList("example.com:9001", &Err).has_value());
  EXPECT_NE(Err.find("loopback"), std::string::npos);
}

TEST(ClusterConfig, StatusSnapshotShape) {
  ClusterOptions O = baseOptions(100);
  WorkerSpec W;
  W.Port = 1; // Never dialed: statusJson needs no live fleet.
  O.Workers = {W, W};
  O.Shards = 5;
  ClusterCoordinator Coord(std::move(O));
  Json S = Coord.statusJson();
  EXPECT_FALSE(S.at("running").asBool());
  EXPECT_EQ(S.at("shards").asInt(), 5);
  EXPECT_EQ(S.at("shard_phases").at("pending").asInt(), 5);
  EXPECT_EQ(S.at("shard_phases").at("done").asInt(), 0);
  ASSERT_EQ(S.at("workers").size(), 2u);
  EXPECT_FALSE(S.at("workers").asArray()[0].at("dead").asBool());
}

//===----------------------------------------------------------------------===//
// Exactness: cluster front == single-machine front, bit for bit
//===----------------------------------------------------------------------===//

TEST(Cluster, FrontMatchesSingleMachineAcrossWorkerAndShardCounts) {
  if (!haveSockets())
    GTEST_SKIP() << "no sockets on this platform";
  constexpr size_t Limit = 300;
  Json Ref = singleMachineSweep(Limit);

  // Uneven on purpose: shards never divide evenly into workers.
  const struct {
    size_t Workers;
    unsigned Shards;
  } Cases[] = {{1, 3}, {2, 5}, {4, 7}};

  for (const auto &TC : Cases) {
    Fleet F;
    ASSERT_TRUE(F.add(TC.Workers));
    ClusterOptions O = baseOptions(Limit);
    O.Workers = F.specs();
    O.Shards = TC.Shards;
    ClusterResult R = ClusterCoordinator(std::move(O)).run();
    SCOPED_TRACE(testing::Message() << TC.Workers << " workers, "
                                    << TC.Shards << " shards");
    expectMatchesReference(R, Ref);
    EXPECT_EQ(R.Stats.ShardsDone, TC.Shards);
    EXPECT_EQ(R.Stats.WorkerDeaths, 0u);
    EXPECT_EQ(R.Stats.FingerprintMismatches, 0u);
  }
}

//===----------------------------------------------------------------------===//
// Fault injection: every fault surfaces as retry/reassign, never as a
// wrong front
//===----------------------------------------------------------------------===//

TEST(Cluster, WorkerKilledMidStreamIsRetiredAndSweepStaysExact) {
  if (!haveSockets())
    GTEST_SKIP() << "no sockets on this platform";
  constexpr size_t Limit = 200;
  Json Ref = singleMachineSweep(Limit);

  Fleet Honest;
  ASSERT_TRUE(Honest.add(1));
  FaultOptions FO;
  FO.Mode = FaultMode::KillMidStream;
  FO.TriggerConnections = 0; // every sweep dies mid-stream
  FO.AfterChunks = 1;
  service::ServiceOptions SO;
  SO.Threads = 2;
  FaultyWorker Killer(FO, SO);
  ASSERT_TRUE(Killer.start());

  eventlog::journalStartBuffered();
  ClusterOptions O = baseOptions(Limit);
  O.Workers = Honest.specs();
  WorkerSpec W;
  W.Port = Killer.port();
  O.Workers.push_back(W);
  O.Shards = 4;
  ClusterResult R = ClusterCoordinator(std::move(O)).run();
  eventlog::journalStop();
  Killer.stop();

  expectMatchesReference(R, Ref);
  EXPECT_GE(R.Stats.Retries, 1u);
  EXPECT_GE(R.Stats.Reassignments, 1u);
  EXPECT_EQ(R.Stats.WorkerDeaths, 1u);
  EXPECT_GE(Killer.faultsInjected(), 1u);

  std::vector<std::string> J = eventlog::journalLines();
  EXPECT_TRUE(journalHasKind(J, "cluster-begin"));
  EXPECT_TRUE(journalHasKind(J, "shard-dispatch"));
  EXPECT_TRUE(journalHasKind(J, "shard-done"));
  EXPECT_TRUE(journalHasKind(J, "shard-retry"));
  EXPECT_TRUE(journalHasKind(J, "shard-reassign"));
  EXPECT_TRUE(journalHasKind(J, "worker-dead"));
  EXPECT_TRUE(journalHasKind(J, "cluster-end"));
}

TEST(Cluster, StalledWorkerTripsShardTimeoutAndSweepStaysExact) {
  if (!haveSockets())
    GTEST_SKIP() << "no sockets on this platform";
  constexpr size_t Limit = 80;
  Json Ref = singleMachineSweep(Limit);

  Fleet Honest;
  ASSERT_TRUE(Honest.add(1));
  FaultOptions FO;
  FO.Mode = FaultMode::Stall;
  FO.TriggerConnections = 1; // first sweep stalls, then honest
  FO.AfterChunks = 0;
  FO.StallMs = 20000; // way past the shard timeout below
  service::ServiceOptions SO;
  SO.Threads = 2;
  FaultyWorker Staller(FO, SO);
  ASSERT_TRUE(Staller.start());

  ClusterOptions O = baseOptions(Limit);
  O.Workers = Honest.specs();
  WorkerSpec W;
  W.Port = Staller.port();
  O.Workers.push_back(W);
  O.Shards = 3;
  O.ShardTimeoutMs = 1500; // the stall must look exactly like a death
  O.Retry = 5;
  ClusterResult R = ClusterCoordinator(std::move(O)).run();
  Staller.stop();

  expectMatchesReference(R, Ref);
  EXPECT_GE(R.Stats.Retries, 1u);
  EXPECT_EQ(Staller.faultsInjected(), 1u);
}

TEST(Cluster, HostileChunkStreamsAreRetriedNeverMerged) {
  if (!haveSockets())
    GTEST_SKIP() << "no sockets on this platform";
  constexpr size_t Limit = 120;
  Json Ref = singleMachineSweep(Limit);

  const struct {
    FaultMode Mode;
    const char *Name;
  } Cases[] = {{FaultMode::TruncateFrame, "truncated frame"},
               {FaultMode::GarbageChunk, "garbage chunk"},
               {FaultMode::DuplicateChunk, "duplicate front_point chunk"},
               {FaultMode::PrematureEnd, "premature stream_end"}};

  for (const auto &TC : Cases) {
    SCOPED_TRACE(TC.Name);
    Fleet Honest;
    ASSERT_TRUE(Honest.add(1));
    FaultOptions FO;
    FO.Mode = TC.Mode;
    FO.TriggerConnections = 1;
    FO.AfterChunks = TC.Mode == FaultMode::TruncateFrame ? 0 : 1;
    service::ServiceOptions SO;
    SO.Threads = 2;
    FaultyWorker Hostile(FO, SO);
    ASSERT_TRUE(Hostile.start());

    ClusterOptions O = baseOptions(Limit);
    O.Workers = Honest.specs();
    WorkerSpec W;
    W.Port = Hostile.port();
    O.Workers.push_back(W);
    O.Shards = 3;
    O.Retry = 5;
    ClusterResult R = ClusterCoordinator(std::move(O)).run();
    Hostile.stop();

    expectMatchesReference(R, Ref);
    EXPECT_GE(R.Stats.Retries, 1u);
    EXPECT_GE(Hostile.faultsInjected(), 1u);
  }
}

TEST(Cluster, DuplicateCompletionFingerprintMismatchFailsLoudly) {
  if (!haveSockets())
    GTEST_SKIP() << "no sockets on this platform";
  constexpr size_t Limit = 100;

  Fleet Honest;
  ASSERT_TRUE(Honest.add(1));
  // This worker always corrupts objectives AND delays its replies, so
  // the honest worker speculatively completes the corrupt worker's shard
  // first; the corrupt duplicate then arrives with a different
  // fingerprint — a byzantine worker the run must refuse to trust.
  FaultOptions FO;
  FO.Mode = FaultMode::CorruptObjectives;
  FO.TriggerConnections = 0;
  FO.AfterChunks = 0;
  FO.PreReplyDelayMs = 2500;
  service::ServiceOptions SO;
  SO.Threads = 2;
  FaultyWorker Corrupt(FO, SO);
  ASSERT_TRUE(Corrupt.start());

  ClusterOptions O = baseOptions(Limit);
  O.Workers = Honest.specs();
  WorkerSpec W;
  W.Port = Corrupt.port();
  O.Workers.push_back(W);
  O.Shards = 2;
  O.Speculate = true;
  ClusterResult R = ClusterCoordinator(std::move(O)).run();
  Corrupt.stop();

  EXPECT_FALSE(R.Ok);
  EXPECT_GE(R.Stats.DuplicateCompletions, 1u);
  EXPECT_GE(R.Stats.FingerprintMismatches, 1u);
  ASSERT_FALSE(R.Errors.empty());
  EXPECT_NE(R.Errors.front().find("fingerprint"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Duplicate completions on the healthy path resolve first-wins
//===----------------------------------------------------------------------===//

TEST(Cluster, SpeculativeDuplicatesAgreeOnFingerprints) {
  if (!haveSockets())
    GTEST_SKIP() << "no sockets on this platform";
  constexpr size_t Limit = 150;
  Json Ref = singleMachineSweep(Limit);

  // One honest-but-slow worker: the fast worker finishes everything and
  // speculates the slow worker's in-flight shard, producing duplicate
  // completions whose fingerprints MUST agree (sweeps are
  // deterministic).
  Fleet Fast;
  ASSERT_TRUE(Fast.add(1));
  FaultOptions FO;
  FO.Mode = FaultMode::None;
  FO.TriggerConnections = 0;
  FO.PreReplyDelayMs = 1000;
  service::ServiceOptions SO;
  SO.Threads = 2;
  FaultyWorker Slow(FO, SO);
  ASSERT_TRUE(Slow.start());

  ClusterOptions O = baseOptions(Limit);
  O.Workers = Fast.specs();
  WorkerSpec W;
  W.Port = Slow.port();
  O.Workers.push_back(W);
  O.Shards = 2;
  O.Speculate = true;
  ClusterResult R = ClusterCoordinator(std::move(O)).run();
  Slow.stop();

  expectMatchesReference(R, Ref);
  EXPECT_GE(R.Stats.SpeculativeDispatches, 1u);
  EXPECT_GE(R.Stats.DuplicateCompletions, 1u);
  EXPECT_EQ(R.Stats.FingerprintMismatches, 0u);
}

//===----------------------------------------------------------------------===//
// Cache shipping: the fleet converges to all-hit
//===----------------------------------------------------------------------===//

TEST(Cluster, CacheSyncConvergesFleetToAllHit) {
  if (!haveSockets())
    GTEST_SKIP() << "no sockets on this platform";
  constexpr size_t Limit = 200;
  Json Ref = singleMachineSweep(Limit);

  Fleet F;
  ASSERT_TRUE(F.add(2));

  eventlog::journalStartBuffered();
  ClusterOptions O1 = baseOptions(Limit);
  O1.Workers = F.specs();
  O1.Shards = 4;
  O1.SyncCacheAfter = true;
  ClusterResult R1 = ClusterCoordinator(std::move(O1)).run();
  eventlog::journalStop();
  expectMatchesReference(R1, Ref);
  EXPECT_GT(R1.Stats.CacheEntriesShipped, 0u);
  EXPECT_TRUE(journalHasKind(eventlog::journalLines(), "cache-sync"));

  // Second sweep, different shard partition: every estimate any worker
  // needs was shipped to it, so the whole fleet runs from cache.
  ClusterOptions O2 = baseOptions(Limit);
  O2.Workers = F.specs();
  O2.Shards = 3;
  ClusterResult R2 = ClusterCoordinator(std::move(O2)).run();
  expectMatchesReference(R2, Ref);
  EXPECT_GE(R2.Stats.EstimateCacheHits,
            R2.Stats.Explored - R2.Stats.Explored / 10);
  EXPECT_GT(R2.Stats.EstimateCacheHits, R1.Stats.EstimateCacheHits);
}

//===----------------------------------------------------------------------===//
// The watch machinery as a fleet view
//===----------------------------------------------------------------------===//

TEST(Cluster, ProbeWorkersAnswersPerWorkerWatchSnapshots) {
  if (!haveSockets())
    GTEST_SKIP() << "no sockets on this platform";
  Fleet F;
  ASSERT_TRUE(F.add(2));
  ClusterOptions O = baseOptions(50);
  O.Workers = F.specs();
  ClusterCoordinator Coord(std::move(O));
  Json Probes = Coord.probeWorkers();
  ASSERT_EQ(Probes.size(), 2u);
  for (const Json &P : Probes.asArray()) {
    EXPECT_TRUE(P.contains("watch")) << P.dump();
    EXPECT_FALSE(P.at("watch").at("running").asBool(true));
  }
}
