//===- RegressionAnchorsTest.cpp - Pinned reproduction anchors --*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
// Pins the quantitative anchors reported in EXPERIMENTS.md so that any
// change to the type system's acceptance semantics or the kernel ports is
// flagged immediately. (Estimator cost constants are deliberately NOT
// pinned — they are tuning knobs, not semantics.)
//
//===----------------------------------------------------------------------===//

#include "ast/ASTPrinter.h"
#include "cyclesim/CycleSim.h"
#include "driver/CompilerPipeline.h"
#include "kernels/Kernels.h"

#include <gtest/gtest.h>

using namespace dahlia;
using namespace dahlia::kernels;

namespace {

bool acceptsSrc(const std::string &Src) { return driver::checksSource(Src); }

TEST(Anchors, Stencil2dAcceptanceCount) {
  // EXPERIMENTS.md E5: 169 of 2,916 configurations accepted.
  size_t Accepted = 0;
  for (const Stencil2dConfig &C : stencil2dSpace())
    Accepted += acceptsSrc(stencil2dDahlia(C)) ? 1 : 0;
  EXPECT_EQ(Accepted, 169u);
}

TEST(Anchors, GemmBlockedAcceptanceIsAnalytic) {
  // EXPERIMENTS.md E4 reports 153/32,000. The closed form under this
  // checker's rules: banking in {1,2,4} (3 does not divide 128), unroll
  // in {1,2,4} (6 divides nothing, 8 exceeds max banking), with
  //   B11 = U1 = U3 (when > 1), B12 = U3 = U2, B21 = U1, B22 = U2.
  // Verify the closed form on the U-triple diagonal plus spot-check the
  // full space on a random slice (full sweep lives in bench/fig7).
  size_t Slice = 0, SliceAccepted = 0;
  for (const GemmBlockedConfig &C : gemmBlockedSpace()) {
    if (C.Bank21 != 1 || C.Bank22 != 1)
      continue; // 2,000-config slice.
    ++Slice;
    bool Accepted = acceptsSrc(gemmBlockedDahlia(C));
    // Analytic prediction for the slice.
    auto Matches = [](int64_t U, int64_t B) { return U == 1 || U == B; };
    bool Valid = C.Bank11 != 3 && C.Bank12 != 3 && C.Unroll1 != 6 &&
                 C.Unroll2 != 6 && C.Unroll3 != 6 &&
                 Matches(C.Unroll1, C.Bank11) &&
                 Matches(C.Unroll3, C.Bank12) &&
                 Matches(C.Unroll3, C.Bank11) &&
                 Matches(C.Unroll2, C.Bank12) &&
                 Matches(C.Unroll1, 1) // B21 == 1 in this slice
                 && Matches(C.Unroll2, 1); // B22 == 1 in this slice
    EXPECT_EQ(Accepted, Valid)
        << "B11=" << C.Bank11 << " B12=" << C.Bank12 << " U=" << C.Unroll1
        << "," << C.Unroll2 << "," << C.Unroll3;
    SliceAccepted += Accepted ? 1 : 0;
  }
  EXPECT_EQ(Slice, 2000u);
  // Analytic slice count: B21=B22=1 forces U1=U2=1; then B11 free unless
  // U3>1 (B11=U3), B12 free unless U3>1 (B12=U3):
  //   U3=1: 3*3 = 9; U3 in {2,4}: 1 each => 11.
  EXPECT_EQ(SliceAccepted, 11u);
}

TEST(Anchors, Fig4SimulatedCycleCounts) {
  // Cycle-level simulated (Exact-rung) cycle counts for the Figure 4
  // gemm512 families. Unlike the estimator's tuning knobs, the simulated
  // schedule is part of the reproduction's predictability story — Section
  // 7's argument rests on cycle counts that track bank port conflicts
  // exactly — so representative points are pinned. Re-baseline these
  // together with bench/baselines/sim_accuracy.json when the cost model
  // or the simulator's schedule semantics change intentionally.
  auto SimCycles = [](const hlsim::KernelSpec &K) {
    return cyclesim::simulate(K).Cycles;
  };
  // Fig 4a: unrolling without partitioning — the single-ported bank
  // serializes the PEs; the walk observes the full 8-way conflict. (The
  // rule-violating points carry the deterministic heuristic-noise
  // multiplier, hence the fractional cycles.)
  EXPECT_EQ(SimCycles(gemm512(1, 1)), 134743054.0);
  EXPECT_EQ(SimCycles(gemm512(8, 1)), 188733370.21150869);
  // Fig 4b: unroll 8 over 8 banks is conflict-free; unroll 9 pays the
  // bank-indirection penalty the paper observes.
  EXPECT_EQ(SimCycles(gemm512(8, 8)), 17302542.0);
  EXPECT_EQ(SimCycles(gemm512(9, 8)), 34121503.337712206);
  // Fig 4c: banking and unrolling in lockstep scale smoothly.
  EXPECT_EQ(SimCycles(gemm512Lockstep(2)), 67634190.0);
  EXPECT_EQ(SimCycles(gemm512Lockstep(4)), 34079758.0);
  EXPECT_EQ(SimCycles(gemm512Lockstep(8)), 17302542.0);
}

TEST(Anchors, MachSuitePortsPrintAndReparse) {
  // Every shipped port round-trips through the printer.
  driver::CompilerPipeline Pipeline;
  for (const MachSuiteBenchmark &B : machSuiteBenchmarks()) {
    driver::CompileResult P = Pipeline.parse(B.DahliaSource);
    ASSERT_TRUE(P.ok()) << B.Name;
    std::string Printed = printProgram(*P.Prog);
    driver::CompileResult Again = Pipeline.parse(Printed);
    ASSERT_TRUE(Again.ok()) << B.Name << "\n" << Printed;
    EXPECT_EQ(printProgram(*Again.Prog), Printed) << B.Name;
    // And the reparse still type-checks.
    EXPECT_TRUE(driver::checksSource(Printed)) << B.Name;
  }
}

TEST(Anchors, SweepKernelsPrintAndReparse) {
  const std::string Sources[] = {
      gemmBlockedDahlia(GemmBlockedConfig()),
      stencil2dDahlia(Stencil2dConfig()),
      mdKnnDahlia(MdKnnConfig()),
      mdGridDahlia(MdGridConfig()),
  };
  driver::CompilerPipeline Pipeline;
  for (const std::string &Src : Sources) {
    driver::CompileResult P = Pipeline.parse(Src);
    ASSERT_TRUE(P.ok());
    std::string Printed = printProgram(*P.Prog);
    EXPECT_TRUE(driver::checksSource(Printed)) << Printed;
  }
}

} // namespace
