//===- SemaTest.cpp - Affine type checker tests -----------------*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
// Every example program from Section 3 of the paper appears here with the
// acceptance/rejection behaviour the paper describes.
//
//===----------------------------------------------------------------------===//

#include "driver/CompilerPipeline.h"

#include <gtest/gtest.h>

using namespace dahlia;

namespace {

/// Type-checks \p Src as a bare command; returns diagnosed errors.
std::vector<Error> checkSrc(std::string_view Src) {
  std::vector<Error> Errs = driver::checkBareCommand(Src);
  bool ParseFailed = !Errs.empty() && (Errs.front().kind() == ErrorKind::Parse ||
                                       Errs.front().kind() == ErrorKind::Lex);
  EXPECT_FALSE(ParseFailed) << Errs.front().str() << "\nsource: " << Src;
  return Errs;
}

std::vector<Error> checkProgramSrc(std::string_view Src) {
  driver::CompileResult R = driver::CompilerPipeline().check(Src);
  EXPECT_FALSE(R.Diags.hasKind(ErrorKind::Parse) ||
               R.Diags.hasKind(ErrorKind::Lex))
      << R.firstError() << "\nsource: " << Src;
  return R.Diags.errors();
}

::testing::AssertionResult accepts(std::string_view Src) {
  std::vector<Error> Errs = checkSrc(Src);
  if (Errs.empty())
    return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "unexpected error: " << Errs.front().str();
}

::testing::AssertionResult rejects(std::string_view Src, ErrorKind Kind) {
  std::vector<Error> Errs = checkSrc(Src);
  if (Errs.empty())
    return ::testing::AssertionFailure() << "program unexpectedly accepted";
  for (const Error &E : Errs)
    if (E.kind() == Kind)
      return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "expected " << errorKindName(Kind) << " error, got: "
         << Errs.front().str();
}

//===----------------------------------------------------------------------===//
// Section 3.1: affine memory types
//===----------------------------------------------------------------------===//

TEST(SemaAffine, SimpleReadIsOK) {
  EXPECT_TRUE(accepts("let A: float[10]; let x = A[0];"));
}

TEST(SemaAffine, CannotCopyMemories) {
  // Paper: let B = A; // Error: cannot copy memories.
  EXPECT_TRUE(rejects("let A: float[10]; let B = A;", ErrorKind::Affine));
}

TEST(SemaAffine, ReadThenWriteSameStepConflicts) {
  // Paper: A[1] := 1; // Error: Previous read consumed A.
  EXPECT_TRUE(rejects("let A: float[10]; let x = A[0]; A[1] := 1;",
                      ErrorKind::Affine));
}

TEST(SemaAffine, IdenticalReadsShareACapability) {
  // Paper: let x = A[0]; let y = A[0]; // OK: Reading the same address.
  EXPECT_TRUE(accepts("let A: float[10]; let x = A[0]; let y = A[0];"));
}

TEST(SemaAffine, DistinctReadsToSameBankConflict) {
  // A[0] and A[5] live in the same (only) bank.
  EXPECT_TRUE(rejects("let A: float[10]; let x = A[0]; let y = A[5];",
                      ErrorKind::Affine));
}

TEST(SemaAffine, TwoWritesToSameLocationConflict) {
  EXPECT_TRUE(
      rejects("let A: float[10]; A[0] := 1; A[0] := 2;", ErrorKind::Affine));
}

TEST(SemaAffine, WriteAfterIdenticalReadStillConflicts) {
  // Read capabilities are non-affine but do not license writes.
  EXPECT_TRUE(rejects("let A: float[10]; let x = A[0]; A[0] := x;",
                      ErrorKind::Affine));
}

//===----------------------------------------------------------------------===//
// Section 3.2: ordered and unordered composition
//===----------------------------------------------------------------------===//

TEST(SemaCompose, OrderedCompositionRestoresResources) {
  // Paper: let x = A[0] --- A[1] := 1 is legal.
  EXPECT_TRUE(accepts("let A: float[10];\nlet x = A[0]\n---\nA[1] := 1;"));
}

TEST(SemaCompose, SeqConsumptionIsVisibleOutside) {
  // Paper Section 3.2 composite example: the last read conflicts with the
  // ordered block's use of B.
  EXPECT_TRUE(rejects("let A: float[10]; let B: float[10];\n"
                      "{\n let x = A[0] + 1\n ---\n B[1] := A[1] + x\n};\n"
                      "let y = B[0];",
                      ErrorKind::Affine));
}

TEST(SemaCompose, SeqThenDisjointMemoryIsOK) {
  EXPECT_TRUE(accepts("let A: float[10]; let B: float[10];\n"
                      "{\n let x = A[0] + 1\n ---\n let z = A[1] + x\n};\n"
                      "let y = B[0];"));
}

TEST(SemaCompose, LocalVariablesAreUnrestricted) {
  EXPECT_TRUE(accepts("let x = 0; x := x + 1; let y = x;"));
}

TEST(SemaCompose, NestedSeqInsideSeq) {
  EXPECT_TRUE(accepts("let A: float[10];\n"
                      "{ let a = A[0] --- let b = A[1] }\n"
                      "---\n"
                      "let c = A[2];"));
}

//===----------------------------------------------------------------------===//
// Section 3.3: memory banking
//===----------------------------------------------------------------------===//

TEST(SemaBanking, BankMustDivideSize) {
  // Paper: the banking factor m must evenly divide the size n.
  EXPECT_TRUE(rejects("let A: float[10 bank 4];", ErrorKind::Banking));
  EXPECT_TRUE(accepts("let A: float[8 bank 4];"));
}

TEST(SemaBanking, PhysicalAccessesToDistinctBanks) {
  // Paper: A{0}[0] := 1; A{1}[0] := 2; // OK: different banks.
  EXPECT_TRUE(accepts("let A: float[10 bank 2]; A{0}[0] := 1; A{1}[0] := 2;"));
}

TEST(SemaBanking, PhysicalAccessSameBankConflicts) {
  EXPECT_TRUE(rejects("let A: float[10 bank 2]; A{0}[0] := 1; A{0}[1] := 2;",
                      ErrorKind::Affine));
}

TEST(SemaBanking, LogicalIndexingDeducesBanks) {
  // A[0] is bank 0, A[1] is bank 1 under round-robin banking.
  EXPECT_TRUE(accepts("let A: float[10 bank 2]; A[0] := 1; A[1] := 2;"));
  EXPECT_TRUE(
      rejects("let A: float[10 bank 2]; A[0] := 1; A[2] := 2;",
              ErrorKind::Affine));
}

TEST(SemaBanking, MultiPortedMemories) {
  // Paper: let A: float{2}[10]; let x = A[0]; A[1] := x + 1; is legal.
  EXPECT_TRUE(accepts("let A: float{2}[10]; let x = A[0]; A[1] := x + 1;"));
  // A third access in the same step still conflicts.
  EXPECT_TRUE(rejects(
      "let A: float{2}[10]; let x = A[0]; A[1] := x + 1; A[2] := 2;",
      ErrorKind::Affine));
}

TEST(SemaBanking, PhysicalBankOutOfRange) {
  EXPECT_TRUE(
      rejects("let A: float[10 bank 2]; A{2}[0] := 1;", ErrorKind::Banking));
}

TEST(SemaBanking, StaticIndexOutOfBounds) {
  EXPECT_TRUE(rejects("let A: float[10]; A[10] := 1;", ErrorKind::Type));
}

TEST(SemaBanking, MultiDimensionalBanking) {
  // 2x2 banks; logical [1][1] lives in flattened bank 3, [0][0] in bank 0.
  EXPECT_TRUE(accepts("let M: float[4 bank 2][4 bank 2];\n"
                      "M[0][0] := 1; M[1][1] := 2; M[0][1] := 3;"));
  EXPECT_TRUE(rejects("let M: float[4 bank 2][4 bank 2];\n"
                      "M[0][0] := 1; M[2][2] := 2;",
                      ErrorKind::Affine));
}

//===----------------------------------------------------------------------===//
// Section 3.4: loops and unrolling
//===----------------------------------------------------------------------===//

TEST(SemaUnroll, UnrollWithoutBanksIsInsufficient) {
  // Paper: unroll 2 over an unbanked array is an error.
  EXPECT_TRUE(rejects("let A: float[10];\n"
                      "for (let i = 0..10) unroll 2 { A[i] := 1.0; }",
                      ErrorKind::Unroll));
}

TEST(SemaUnroll, UnrollMatchingBankingIsOK) {
  EXPECT_TRUE(accepts("let A: float[10 bank 2];\n"
                      "for (let i = 0..10) unroll 2 { A[i] := 1.0; }"));
}

TEST(SemaUnroll, UnrollBelowBankingNeedsShrinkView) {
  // Unroll 2 over a 4-banked memory: rejected without a shrink view.
  EXPECT_TRUE(rejects("let A: float[8 bank 4];\n"
                      "for (let i = 0..8) unroll 2 { A[i] := 1.0; }",
                      ErrorKind::Unroll));
  // Paper Section 3.6: the shrink view makes it legal.
  EXPECT_TRUE(accepts("let A: float[8 bank 4];\n"
                      "view sh = shrink A[by 2];\n"
                      "for (let i = 0..8) unroll 2 { let x = sh[i]; }"));
}

TEST(SemaUnroll, SequentialAccessToBankedMemoryIsOK) {
  EXPECT_TRUE(accepts("let A: float[8 bank 4];\n"
                      "for (let i = 0..8) { A[i] := 1.0; }"));
}

TEST(SemaUnroll, UnrollMustDivideTripCount) {
  EXPECT_TRUE(rejects("let A: float[9 bank 3];\n"
                      "for (let i = 0..9) unroll 2 { let x = A[0]; }",
                      ErrorKind::Unroll));
}

TEST(SemaUnroll, OrderedCompositionInsideUnrolledBody) {
  // Paper Section 3.4 lockstep example: conflicts need only be avoided
  // within each logical time step.
  std::vector<Error> Errs =
      checkProgramSrc("def f(a: float, b: float) { let t = a + b; }\n"
                      "decl A: float[10 bank 2];\n"
                      "for (let i = 0..10) unroll 2 {\n"
                      "  let x = A[i]\n"
                      "  ---\n"
                      "  f(x, A[0]);\n"
                      "}");
  EXPECT_TRUE(Errs.empty()) << (Errs.empty() ? "" : Errs.front().str());
}

TEST(SemaUnroll, NestedUnrollReadSharedWriteConflicts) {
  // Paper Section 3.4 nested-unroll example: the read of A[i][0] fans out
  // (legal); the write A[i][0] := j produces a write conflict.
  const char *ReadOnly = "let A: float[8 bank 4][10 bank 5];\n"
                         "for (let i = 0..8) {\n"
                         "  for (let j = 0..10) unroll 5 {\n"
                         "    let x = A[i][0];\n"
                         "  }\n"
                         "}";
  EXPECT_TRUE(accepts(ReadOnly));
  const char *WithWrite = "let A: float[8 bank 4][10 bank 5];\n"
                          "for (let i = 0..8) {\n"
                          "  for (let j = 0..10) unroll 5 {\n"
                          "    let x = A[i][0]\n"
                          "    ---\n"
                          "    A[i][0] := j;\n"
                          "  }\n"
                          "}";
  EXPECT_TRUE(rejects(WithWrite, ErrorKind::Affine));
}

TEST(SemaUnroll, NestedUnrollOnSeparateDimensions) {
  EXPECT_TRUE(accepts("let A: float[8 bank 4][10 bank 5];\n"
                      "for (let i = 0..8) unroll 4 {\n"
                      "  for (let j = 0..10) unroll 5 {\n"
                      "    let x = A[i][j];\n"
                      "  }\n"
                      "}"));
}

TEST(SemaUnroll, ShiftedIteratorKeepsBankAnalysis) {
  // A[j + 8]-style accesses stay analyzable (Section 3.6 motivation).
  EXPECT_TRUE(accepts("let A: float[16 bank 2];\n"
                      "for (let j = 0..8) unroll 2 { let x = A[j + 8]; }"));
}

TEST(SemaUnroll, ArbitraryIndexArithmeticRejected) {
  // Paper: rejects arbitrary index calculations like A[2*i].
  EXPECT_TRUE(rejects("let A: float[16 bank 2];\n"
                      "for (let i = 0..8) unroll 2 { let x = A[2 * i]; }",
                      ErrorKind::Unroll));
  EXPECT_TRUE(rejects("let A: float[16 bank 4];\n"
                      "for (let i = 0..4) { let x = A[i * i]; }",
                      ErrorKind::Unroll));
  // On an unbanked memory, arbitrary indices are fine.
  EXPECT_TRUE(accepts("let A: float[16];\n"
                      "for (let i = 0..4) { let x = A[i * i]; }"));
}

TEST(SemaUnroll, WriteToSameLocationAcrossCopies) {
  // Each unrolled copy writes A[0]: a write conflict.
  EXPECT_TRUE(rejects("let A: float[8 bank 2];\n"
                      "for (let i = 0..8) unroll 2 { A[0] := 1.0; }",
                      ErrorKind::Affine));
  // Reading A[0] in every copy is a shared fan-out: legal.
  EXPECT_TRUE(accepts("let A: float[8 bank 2]; let B: float[8 bank 2];\n"
                      "for (let i = 0..8) unroll 2 { B[i] := A[0]; }"));
}

//===----------------------------------------------------------------------===//
// Section 3.5: combine blocks
//===----------------------------------------------------------------------===//

TEST(SemaCombine, DirectReductionInUnrolledBodyRejected) {
  // Paper: dot += A[i] * B[i] inside an unrolled doall loop is illegal.
  EXPECT_TRUE(rejects("let A: float[10 bank 2]; let B: float[10 bank 2];\n"
                      "let dot = 0.0;\n"
                      "for (let i = 0..10) unroll 2 { dot += A[i] * B[i]; }",
                      ErrorKind::Type));
}

TEST(SemaCombine, CombineBlockReductionAccepted) {
  EXPECT_TRUE(accepts("let A: float[10 bank 2]; let B: float[10 bank 2];\n"
                      "let dot = 0.0;\n"
                      "for (let i = 0..10) unroll 2 {\n"
                      "  let v = A[i] * B[i];\n"
                      "} combine {\n"
                      "  dot += v;\n"
                      "}"));
}

TEST(SemaCombine, CombineRegisterOnlyInsideReducer) {
  EXPECT_TRUE(rejects("let A: float[10 bank 2];\n"
                      "let out = 0.0;\n"
                      "for (let i = 0..10) unroll 2 {\n"
                      "  let v = A[i];\n"
                      "} combine {\n"
                      "  out := v;\n"
                      "}",
                      ErrorKind::Type));
}

TEST(SemaCombine, SequentialForAlsoNeedsCombine) {
  // Even with unroll 1, doall for bodies may not write outer variables.
  EXPECT_TRUE(rejects("let A: float[10]; let sum = 0.0;\n"
                      "for (let i = 0..10) { sum += A[i]; }",
                      ErrorKind::Type));
  EXPECT_TRUE(accepts("let A: float[10]; let sum = 0.0;\n"
                      "for (let i = 0..10) {\n"
                      "  let v = A[i];\n"
                      "} combine { sum += v; }"));
}

TEST(SemaCombine, WhileLoopAllowsSequentialUpdates) {
  EXPECT_TRUE(accepts("let x = 0; let going = true;\n"
                      "while (going) { x := x + 1; going := x < 10; }"));
}

//===----------------------------------------------------------------------===//
// Section 3.6: memory views
//===----------------------------------------------------------------------===//

TEST(SemaView, ShrinkReducesBanking) {
  EXPECT_TRUE(accepts("let A: float[8 bank 4];\n"
                      "view sh = shrink A[by 2];\n"
                      "for (let i = 0..8) unroll 2 { let x = sh[i]; }"));
}

TEST(SemaView, ShrinkFactorMustDivideBanking) {
  EXPECT_TRUE(rejects("let A: float[8 bank 4]; view sh = shrink A[by 3];",
                      ErrorKind::View));
}

TEST(SemaView, ShrinkViewStillConsumesUnderlyingBanks) {
  // Accessing through the shrink view consumes the underlying banks, so a
  // direct access in the same step conflicts.
  EXPECT_TRUE(rejects("let A: float[8 bank 4];\n"
                      "view sh = shrink A[by 2];\n"
                      "for (let i = 0..8) unroll 2 {\n"
                      "  let x = sh[i]; let y = A[0];\n"
                      "}",
                      ErrorKind::Affine));
}

TEST(SemaView, AlignedSuffix) {
  // Paper: view s = suffix A[by 2*i]; s[1] reads A[2*i + 1].
  EXPECT_TRUE(accepts("let A: float[8 bank 2];\n"
                      "for (let i = 0..4) {\n"
                      "  view s = suffix A[by 2 * i];\n"
                      "  let x = s[1];\n"
                      "}"));
}

TEST(SemaView, MisalignedSuffixRejected) {
  EXPECT_TRUE(rejects("let A: float[8 bank 2];\n"
                      "for (let i = 0..4) {\n"
                      "  view s = suffix A[by 3 * i];\n"
                      "  let x = s[1];\n"
                      "}",
                      ErrorKind::View));
  EXPECT_TRUE(rejects("let A: float[8 bank 2]; view s = suffix A[by 3];",
                      ErrorKind::View));
}

TEST(SemaView, ShiftAllowsArbitraryOffsets) {
  // Paper Section 3.6 shift example.
  EXPECT_TRUE(accepts("let A: float[12 bank 4];\n"
                      "for (let i = 0..3) {\n"
                      "  view r = shift A[by i * i];\n"
                      "  for (let j = 0..4) unroll 4 { let x = r[j]; }\n"
                      "}"));
}

TEST(SemaView, ShiftRouteConflictsWithDirectAccess) {
  EXPECT_TRUE(rejects("let A: float[12 bank 4];\n"
                      "view r = shift A[by 5];\n"
                      "let x = r[0]; let y = A[0];",
                      ErrorKind::Affine));
}

TEST(SemaView, SplitEnablesBlockedParallelism) {
  // Paper Section 3.6 split example (dot product over windows).
  EXPECT_TRUE(accepts("let A: float[12 bank 4]; let B: float[12 bank 4];\n"
                      "view split_A = split A[by 2];\n"
                      "view split_B = split B[by 2];\n"
                      "let sum = 0.0;\n"
                      "for (let i = 0..6) unroll 2 {\n"
                      "  for (let j = 0..2) unroll 2 {\n"
                      "    let v = split_A[j][i] * split_B[j][i];\n"
                      "  } combine {\n"
                      "    sum += v;\n"
                      "  }\n"
                      "}"));
}

TEST(SemaView, SplitViewType) {
  // split A[by 2] over float[12 bank 4] has type float[2 bank 2][6 bank 2].
  EXPECT_TRUE(accepts("let A: float[12 bank 4];\n"
                      "view sp = split A[by 2];\n"
                      "let x = sp[0][0];"));
}

TEST(SemaView, SplitFactorMustDivide) {
  EXPECT_TRUE(rejects("let A: float[12 bank 4]; view sp = split A[by 3];",
                      ErrorKind::View));
}

TEST(SemaView, ViewOfViewComposition) {
  // Paper's blocked dot product builds suffix views of shrink views.
  EXPECT_TRUE(accepts("let A: float[12 bank 4];\n"
                      "view shA = shrink A[by 2];\n"
                      "for (let i = 0..6) {\n"
                      "  view vA = suffix shA[by 2 * i];\n"
                      "  for (let j = 0..2) unroll 2 { let v = vA[j]; }\n"
                      "}"));
}

TEST(SemaView, PhysicalAccessIntoViewRejected) {
  EXPECT_TRUE(rejects("let A: float[8 bank 4];\n"
                      "view sh = shrink A[by 2];\n"
                      "sh{0}[0] := 1.0;",
                      ErrorKind::View));
}

//===----------------------------------------------------------------------===//
// Functions and programs
//===----------------------------------------------------------------------===//

TEST(SemaFunc, MemoryArgumentsAreAffine) {
  // Passing the same memory to two unordered calls conflicts.
  std::vector<Error> Errs = checkProgramSrc(
      "def f(m: float[8 bank 2]) { let x = m[0]; }\n"
      "decl A: float[8 bank 2];\n"
      "f(A); f(A);");
  ASSERT_FALSE(Errs.empty());
  EXPECT_EQ(Errs.front().kind(), ErrorKind::Affine);
}

TEST(SemaFunc, MemoryArgumentsRestoredAcrossTimeSteps) {
  std::vector<Error> Errs = checkProgramSrc(
      "def f(m: float[8 bank 2]) { let x = m[0]; }\n"
      "decl A: float[8 bank 2];\n"
      "f(A)\n---\nf(A);");
  EXPECT_TRUE(Errs.empty()) << (Errs.empty() ? "" : Errs.front().str());
}

TEST(SemaFunc, FunctionBodyIsChecked) {
  std::vector<Error> Errs = checkProgramSrc(
      "def f(m: float[8]) { let x = m[0]; m[1] := 1.0; }");
  ASSERT_FALSE(Errs.empty());
  EXPECT_EQ(Errs.front().kind(), ErrorKind::Affine);
}

TEST(SemaFunc, MemoryArgumentTypeMustMatch) {
  std::vector<Error> Errs = checkProgramSrc(
      "def f(m: float[8 bank 2]) { let x = m[0]; }\n"
      "decl A: float[8 bank 4];\n"
      "f(A);");
  ASSERT_FALSE(Errs.empty());
  EXPECT_EQ(Errs.front().kind(), ErrorKind::Type);
}

TEST(SemaFunc, CallInUnrolledLoopConsumesPerCopy) {
  std::vector<Error> Errs = checkProgramSrc(
      "def f(m: float[8 bank 2]) { let x = m[0]; }\n"
      "decl A: float[8 bank 2];\n"
      "for (let i = 0..4) unroll 2 { f(A); }");
  ASSERT_FALSE(Errs.empty());
  EXPECT_EQ(Errs.front().kind(), ErrorKind::Affine);
}

//===----------------------------------------------------------------------===//
// Scoping and miscellaneous typing
//===----------------------------------------------------------------------===//

TEST(SemaScope, RedefinitionRejected) {
  EXPECT_TRUE(rejects("let x = 1; let x = 2;", ErrorKind::Type));
}

TEST(SemaScope, ScopesEndAtBlockBoundaries) {
  EXPECT_TRUE(accepts("{ let x = 1; } { let x = 2; }"));
}

TEST(SemaScope, MemoryScopedToBlock) {
  EXPECT_TRUE(rejects("{ let A: float[4]; } let x = A[0];", ErrorKind::Type));
}

TEST(SemaScope, UndefinedVariable) {
  EXPECT_TRUE(rejects("let x = y + 1;", ErrorKind::Type));
}

TEST(SemaType, ConditionMustBeBool) {
  EXPECT_TRUE(rejects("let x = 1; if (x) { skip; }", ErrorKind::Type));
  EXPECT_TRUE(accepts("let x = 1; if (x < 2) { skip; }"));
}

TEST(SemaType, IfBranchesMergeConservatively) {
  // Either branch consuming A blocks a later same-step use.
  EXPECT_TRUE(rejects("let A: float[4]; let c = true;\n"
                      "if (c) { let x = A[0]; } else { skip; }\n"
                      "let y = A[1];",
                      ErrorKind::Affine));
}

TEST(SemaType, MemoriesCannotHaveInitializers) {
  EXPECT_TRUE(rejects("let A: float[4] = 3;", ErrorKind::Type));
}

TEST(SemaType, IndexMustBeInteger) {
  EXPECT_TRUE(rejects("let A: float[4]; let x = A[1.5];", ErrorKind::Type));
  EXPECT_TRUE(rejects("let A: float[4]; let x = A[true];", ErrorKind::Type));
}

TEST(SemaType, DimensionCountMustMatch) {
  EXPECT_TRUE(
      rejects("let A: float[4][4]; let x = A[0];", ErrorKind::Type));
  EXPECT_TRUE(rejects("let A: float[4]; let x = A[0][0];", ErrorKind::Type));
}

TEST(SemaType, ArithmeticTyping) {
  EXPECT_TRUE(accepts("let x = 1 + 2 * 3;"));
  EXPECT_TRUE(accepts("let x = 1.5 + 2.5;"));
  EXPECT_TRUE(rejects("let x = true + 1;", ErrorKind::Type));
  EXPECT_TRUE(rejects("let x = 1 && 2;", ErrorKind::Type));
}

//===----------------------------------------------------------------------===//
// Crash-class shapes from the differential fuzzer
//===----------------------------------------------------------------------===//

TEST(SemaBanking, DegenerateShapesAreRejectedNotACrash) {
  EXPECT_TRUE(
      rejects("let A: float[8 bank 0]; let x = A[0];", ErrorKind::Banking));
  EXPECT_TRUE(rejects("let A: float[0]; let x = A[0];", ErrorKind::Banking));
}

TEST(SemaUnroll, DegenerateUnrollFactorsAreRejected) {
  EXPECT_TRUE(rejects("let A: float[8 bank 4];"
                      "for (let i = 0..8) unroll 0 { A[i] := 1.0; }",
                      ErrorKind::Unroll));
  EXPECT_TRUE(rejects("let A: float[8 bank 4];"
                      "for (let i = 0..8) unroll 3 { A[i] := 1.0; }",
                      ErrorKind::Unroll));
}

TEST(SemaAffine, WhileBodyReadsFanOutAcrossUnrolledCopies) {
  // Unrolled copies of a while loop run as independent sequential loops —
  // iteration schedules may diverge — so a read inside the body cannot
  // share one broadcast fetch across copies and needs a port per copy.
  // The differential fuzzer found the old acceptance: the checker said
  // yes while the lowered program got stuck in the strictly affine
  // interpreter.
  EXPECT_TRUE(rejects("let A: float[4];"
                      "for (let i = 0..6) unroll 2 {"
                      "  let c = 0;"
                      "  while (c < 1) { let v = A[c]; c := c + 1; }"
                      "}",
                      ErrorKind::Affine));
  // Enough ports to feed every copy and the same shape is fine.
  EXPECT_TRUE(accepts("let A: float{2}[4];"
                      "for (let i = 0..6) unroll 2 {"
                      "  let c = 0;"
                      "  while (c < 1) { let v = A[c]; c := c + 1; }"
                      "}"));
  // Without replication the while body broadcasts nothing and stays fine.
  EXPECT_TRUE(accepts("let A: float[4];"
                      "for (let i = 0..6) {"
                      "  let c = 0;"
                      "  while (c < 1) { let v = A[c]; c := c + 1; }"
                      "}"));
}

} // namespace
