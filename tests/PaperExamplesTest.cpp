//===- PaperExamplesTest.cpp - Verbatim paper listings ----------*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
// Every code listing from Section 3 of the paper, as close to verbatim as
// the grammar allows, with the acceptance/rejection and semantics the
// prose describes. SemaTest covers the same rules piecewise; this suite
// pins the listings themselves, plus cross-cutting behaviours (physical vs
// logical addressing equivalence, end-to-end execution of the listings).
//
//===----------------------------------------------------------------------===//

#include "driver/CompilerPipeline.h"
#include "filament/Interp.h"

#include <gtest/gtest.h>

using namespace dahlia;
namespace fil = dahlia::filament;

namespace {

std::vector<Error> check(std::string_view Src) {
  std::vector<Error> Errs = driver::checkBareCommand(Src);
  bool ParseFailed = !Errs.empty() && (Errs.front().kind() == ErrorKind::Parse ||
                                       Errs.front().kind() == ErrorKind::Lex);
  EXPECT_FALSE(ParseFailed) << Errs.front().str();
  return Errs;
}

/// Parses, checks, and lowers through the pipeline; asserts success.
LoweredProgram lowerOK(std::string_view Src) {
  driver::CompileResult R = driver::CompilerPipeline().lower(Src);
  EXPECT_TRUE(R.ok()) << R.firstError();
  return R.ok() ? std::move(*R.Lowered) : LoweredProgram{};
}

//===----------------------------------------------------------------------===//
// Section 3.1 listings
//===----------------------------------------------------------------------===//

TEST(Paper31, MemoryDeclarationAndSubscript) {
  // "let A: float[10];" ... "A[5] := 4.2".
  EXPECT_TRUE(check("let A: float[10]; A[5] := 4.2;").empty());
}

TEST(Paper31, ListingOkThenCopyError) {
  // let x = A[0]; // OK: x is a float.
  // let B = A;    // Error: cannot copy memories.
  std::vector<Error> Errs =
      check("let A: float[10]; let x = A[0]; let B = A;");
  ASSERT_EQ(Errs.size(), 1u);
  EXPECT_EQ(Errs[0].kind(), ErrorKind::Affine);
  EXPECT_NE(Errs[0].message().find("cannot copy"), std::string::npos);
}

TEST(Paper31, ReadThenWriteListing) {
  // let x = A[0]; // OK
  // A[1] := 1;    // Error: Previous read consumed A.
  std::vector<Error> Errs =
      check("let A: float[10]; let x = A[0]; A[1] := 1;");
  ASSERT_FALSE(Errs.empty());
  EXPECT_EQ(Errs[0].kind(), ErrorKind::Affine);
}

TEST(Paper31, IdenticalReadListing) {
  EXPECT_TRUE(check("let A: float[10];\n"
                    "let x = A[0];\n"
                    "let y = A[0]; // OK: Reading the same address.")
                  .empty());
}

TEST(Paper31, EquivalentTempRewriteAlsoChecks) {
  // "let tmp = A[0]; let x = tmp; let y = tmp;"
  EXPECT_TRUE(check("let A: float[10];\n"
                    "let tmp = A[0]; let x = tmp; let y = tmp;")
                  .empty());
}

//===----------------------------------------------------------------------===//
// Section 3.2 listings
//===----------------------------------------------------------------------===//

TEST(Paper32, OrderedCompositionListing) {
  EXPECT_TRUE(check("let A: float[10];\nlet x = A[0]\n---\nA[1] := 1;")
                  .empty());
}

TEST(Paper32, CompositeListingRejectsFinalRead) {
  std::vector<Error> Errs =
      check("let A: float[10]; let B: float[10];\n"
            "{\n"
            "  let x = A[0] + 1\n"
            "  ---\n"
            "  B[1] := A[1] + x // OK\n"
            "};\n"
            "let y = B[0]; // Error: B already consumed.");
  ASSERT_FALSE(Errs.empty());
  EXPECT_EQ(Errs[0].kind(), ErrorKind::Affine);
  EXPECT_NE(Errs[0].message().find("'B'"), std::string::npos);
}

TEST(Paper32, LocalVariablesListing) {
  // "let x = 0; x := x + 1; let y = x; // All OK"
  EXPECT_TRUE(check("let x = 0; x := x + 1; let y = x;").empty());
}

TEST(Paper32, RegisterInferenceListingChecksAndRuns) {
  // "let x = A[0] + 1 --- B[0] := A[1] + x" — x crosses a time step.
  const char *Src = "decl A: bit<32>[2];\n"
                    "decl B: bit<32>[2];\n"
                    "let x = A[0] + 1\n"
                    "---\n"
                    "B[0] := A[1] + x;";
  LoweredProgram L = lowerOK(Src);
  ASSERT_TRUE(L.Program);
  fil::Store S = L.makeStore(
      +[](const std::string &, int64_t I) { return 5 + I; });
  fil::SmallStepper M(S, fil::Rho(), L.Program);
  ASSERT_TRUE(bool(M.run()));
  auto [Bank, Off] = L.Mems["B"].locate({0});
  // B[0] = A[1] + (A[0] + 1) = 6 + 6 = 12.
  EXPECT_EQ(std::get<int64_t>(M.store().Mems.at(Bank).at(
                static_cast<size_t>(Off))),
            12);
}

//===----------------------------------------------------------------------===//
// Section 3.3 listings
//===----------------------------------------------------------------------===//

TEST(Paper33, PhysicalBankAccessListing) {
  EXPECT_TRUE(check("let A: float[10 bank 2];\n"
                    "A{0}[0] := 1;\n"
                    "A{1}[0] := 2; // OK: Accessing a different bank.")
                  .empty());
}

TEST(Paper33, LogicalEqualsPhysicalAddressing) {
  // "A[1] is equivalent to A{1}[0]": they consume the same bank, so using
  // both in one time step conflicts; across time steps it is fine.
  EXPECT_FALSE(check("let A: float[10 bank 2];\n"
                     "A[1] := 1; A{1}[0] := 2;")
                   .empty());
  EXPECT_TRUE(check("let A: float[10 bank 2];\n"
                    "A[1] := 1\n---\nA{1}[0] := 2;")
                  .empty());
}

TEST(Paper33, MultiPortListing) {
  EXPECT_TRUE(check("let A: float{2}[10];\n"
                    "let x = A[0];\n"
                    "A[1] := x + 1;")
                  .empty());
}

TEST(Paper33, TwoDimensionalListing) {
  // "let M: float[4 bank 2][4 bank 2];" and "M{3}[0] represents the
  // element logically located at M[1][1]".
  EXPECT_FALSE(check("let M: float[4 bank 2][4 bank 2];\n"
                     "M[1][1] := 1; M{3}[0] := 2;")
                   .empty());
  EXPECT_TRUE(check("let M: float[4 bank 2][4 bank 2];\n"
                    "M[1][1] := 1; M{0}[0] := 2;")
                  .empty());
}

TEST(Paper33, PhysicalAndLogicalAgreeAtRuntime) {
  // Writing through M{3}[0] must land at M[1][1] in the lowered layout.
  const char *Src = "decl M: bit<32>[4 bank 2][4 bank 2];\n"
                    "M{3}[0] := 42;";
  LoweredProgram L = lowerOK(Src);
  ASSERT_TRUE(L.Program);
  fil::SmallStepper M(L.makeZeroStore(), fil::Rho(), L.Program);
  ASSERT_TRUE(bool(M.run()));
  auto [Bank, Off] = L.Mems["M"].locate({1, 1});
  EXPECT_EQ(std::get<int64_t>(
                M.store().Mems.at(Bank).at(static_cast<size_t>(Off))),
            42);
}

//===----------------------------------------------------------------------===//
// Section 3.4 listings
//===----------------------------------------------------------------------===//

TEST(Paper34, UnrollEquivalenceListing) {
  // "for (let i = 0..10) unroll 2 { f(i) }" is equivalent to a sequential
  // loop over two copies — both must type-check against a 2-banked array.
  EXPECT_TRUE(check("let A: float[10 bank 2];\n"
                    "for (let i = 0..10) unroll 2 { A[i] := 1.0; }")
                  .empty());
}

TEST(Paper34, InsufficientBanksListing) {
  std::vector<Error> Errs =
      check("let A: float[10];\n"
            "for (let i = 0..10) unroll 2 {\n"
            "  A[i] := 1.0; // Error: Insufficient banks.\n"
            "}");
  ASSERT_FALSE(Errs.empty());
  EXPECT_EQ(Errs[0].kind(), ErrorKind::Unroll);
  EXPECT_NE(Errs[0].message().find("insufficient banks"),
            std::string::npos);
}

TEST(Paper34, IndexTypesConsumeAllBanks) {
  // "for (let i = 0..8) unroll 4 { A[i] }": idx{0..4} consumes banks
  // 0,1,2,3 — a second access to any bank conflicts.
  EXPECT_FALSE(check("let A: float[8 bank 4];\n"
                     "for (let i = 0..8) unroll 4 {\n"
                     "  let x = A[i]; let y = A[0];\n"
                     "}")
                   .empty());
}

//===----------------------------------------------------------------------===//
// Section 3.5 listing: the dot product
//===----------------------------------------------------------------------===//

TEST(Paper35, DotProductListingsAndExecution) {
  // Rejected form: "for (let i = 0..10) unroll 2 { dot += A[i] * B[i] }".
  EXPECT_FALSE(check("let A: float[10 bank 2]; let B: float[10 bank 2];\n"
                     "let dot = 0.0;\n"
                     "for (let i = 0..10) unroll 2 { dot += A[i] * B[i]; }")
                   .empty());
  // Accepted form with the combine block; execute it end to end.
  const char *Src = "decl A: bit<32>[10 bank 2];\n"
                    "decl B: bit<32>[10 bank 2];\n"
                    "decl out: bit<32>[1];\n"
                    "let dot = 0;\n"
                    "{\n"
                    "for (let i = 0..10) unroll 2 {\n"
                    "  let v = A[i] * B[i];\n"
                    "} combine {\n"
                    "  dot += v;\n"
                    "}\n"
                    "}\n"
                    "---\n"
                    "out[0] := dot;";
  LoweredProgram L = lowerOK(Src);
  ASSERT_TRUE(L.Program);
  // A[i] = i+1, B[i] = 2 -> dot = 2 * (1+...+10) = 110.
  fil::Store S = L.makeZeroStore();
  for (int64_t I = 0; I != 10; ++I) {
    auto [BA, OA] = L.Mems["A"].locate({I});
    auto [BB, OB] = L.Mems["B"].locate({I});
    S.Mems[BA][static_cast<size_t>(OA)] = fil::Value(I + 1);
    S.Mems[BB][static_cast<size_t>(OB)] = fil::Value(int64_t(2));
  }
  fil::SmallStepper M(S, fil::Rho(), L.Program);
  ASSERT_TRUE(bool(M.run()));
  auto [Bank, Off] = L.Mems["out"].locate({0});
  EXPECT_EQ(std::get<int64_t>(
                M.store().Mems.at(Bank).at(static_cast<size_t>(Off))),
            110);
}

//===----------------------------------------------------------------------===//
// Section 3.6 listings
//===----------------------------------------------------------------------===//

TEST(Paper36, ShrinkListing) {
  EXPECT_TRUE(check("let A: float[8 bank 4];\n"
                    "view sh = shrink A[by 2]; // sh: float[8 bank 2]\n"
                    "for (let i = 0..8) unroll 2 {\n"
                    "  let x = sh[i]; // OK: sh has 2 banks.\n"
                    "}")
                  .empty());
}

TEST(Paper36, SuffixListing) {
  EXPECT_TRUE(check("let A: float[8 bank 2];\n"
                    "for (let i = 0..4) {\n"
                    "  view s = suffix A[by 2 * i];\n"
                    "  let x = s[1]; // reads A[2*i + 1]\n"
                    "}")
                  .empty());
}

TEST(Paper36, ShiftListing) {
  EXPECT_TRUE(check("let A: float[12 bank 4];\n"
                    "for (let i = 0..3) {\n"
                    "  view r = shift A[by i * i]; // r: float[12 bank 4]\n"
                    "  for (let j = 0..4) unroll 4 {\n"
                    "    let x = r[j]; // accesses A[i*i + j]\n"
                    "  }\n"
                    "}")
                  .empty());
}

TEST(Paper36, BlockedDotProductWithoutSplitRejected) {
  // The paper's pre-split attempt: suffix views of shrink views under an
  // unrolled outer loop cannot prove disjointness.
  EXPECT_FALSE(check("let A, B: float[12 bank 4];\n"
                     "view shA, shB = shrink A[by 2], B[by 2];\n"
                     "let sum = 0.0;\n"
                     "for (let i = 0..6) unroll 2 {\n"
                     "  view vA, vB = suffix shA[by 2 * i], shB[by 2 * i];\n"
                     "  for (let j = 0..2) unroll 2 {\n"
                     "    let v = vA[j] + vB[j];\n"
                     "  } combine {\n"
                     "    sum += v;\n"
                     "  }\n"
                     "}")
                   .empty());
}

TEST(Paper36, SplitListingAccepted) {
  EXPECT_TRUE(check("let A: float[12 bank 4]; let B: float[12 bank 4];\n"
                    "view split_A = split A[by 2];\n"
                    "view split_B = split B[by 2];\n"
                    "let sum = 0.0;\n"
                    "for (let i = 0..6) unroll 2 {\n"
                    "  for (let j = 0..2) unroll 2 {\n"
                    "    let v = split_A[j][i] * split_B[j][i];\n"
                    "  } combine {\n"
                    "    sum += v;\n"
                    "  }\n"
                    "}")
                  .empty());
}

TEST(Paper36, StencilWindowListing) {
  // The stencil2d port shape from Section 5.3.
  EXPECT_TRUE(check("let orig: float[126 bank 3][63 bank 3];\n"
                    "let filter: float[3 bank 3][3 bank 3];\n"
                    "for (let row = 0..124) {\n"
                    "  for (let col = 0..61) {\n"
                    "    view window = shift orig[by row][by col];\n"
                    "    for (let k1 = 0..3) unroll 3 {\n"
                    "      for (let k2 = 0..3) unroll 3 {\n"
                    "        let mul = filter[k1][k2] * window[k1][k2];\n"
                    "      }\n"
                    "    }\n"
                    "  }\n"
                    "}")
                  .empty())
      << "window fan-out over shifted banks";
}

} // namespace
