//===- DriverTest.cpp - CompilerPipeline driver tests -----------*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
// The driver layer contract: stage sequencing, early stopping on errors,
// diagnostic collection and rendering, per-stage timings, the interp
// stage, and the AST -> hlsim spec extraction behind `--estimate`.
//
//===----------------------------------------------------------------------===//

#include "driver/CompilerPipeline.h"

#include "driver/SpecExtractor.h"
#include "kernels/Kernels.h"

#include <gtest/gtest.h>

using namespace dahlia;
using namespace dahlia::driver;

namespace {

const char *DotProduct = "decl A: float[8 bank 4];\n"
                         "decl B: float[8 bank 4];\n"
                         "decl out: float[1];\n"
                         "let dot = 0.0;\n"
                         "{\n"
                         "for (let i = 0..8) unroll 4 {\n"
                         "  let v = A[i] * B[i];\n"
                         "} combine {\n"
                         "  dot += v;\n"
                         "}\n"
                         "}\n"
                         "---\n"
                         "out[0] := dot;\n";

TEST(Driver, ParseErrorStopsPipeline) {
  CompileResult R = CompilerPipeline().emitHls("let = garbage ;;;");
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(R.Diags.hasKind(ErrorKind::Parse) ||
              R.Diags.hasKind(ErrorKind::Lex));
  EXPECT_FALSE(R.Prog.has_value());
  EXPECT_FALSE(R.HlsCpp.has_value());
  // Only the parse stage ran.
  ASSERT_EQ(R.Timings.size(), 1u);
  EXPECT_EQ(R.Timings[0].S, Stage::Parse);
}

TEST(Driver, TypeErrorStopsBeforeEmit) {
  // The Section 3.1 conflict: read and write in one logical time step.
  CompileResult R = CompilerPipeline().emitHls(
      "decl A: float[10]; let x = A[0]; A[1] := 1.0;");
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(R.Diags.hasKind(ErrorKind::Affine));
  EXPECT_TRUE(R.Prog.has_value()); // parsing succeeded
  EXPECT_FALSE(R.HlsCpp.has_value());
}

TEST(Driver, EmitProducesAnnotatedCpp) {
  PipelineOptions Opts;
  Opts.Emit.KernelName = "dot_product";
  CompileResult R = CompilerPipeline(Opts).emitHls(DotProduct);
  ASSERT_TRUE(R.ok()) << R.firstError();
  EXPECT_NE(R.HlsCpp->find("dot_product"), std::string::npos);
  EXPECT_NE(R.HlsCpp->find("#pragma HLS"), std::string::npos);
}

TEST(Driver, StageTimingsRecordedInOrder) {
  CompileResult R = CompilerPipeline().emitHls(DotProduct);
  ASSERT_TRUE(R.ok()) << R.firstError();
  ASSERT_EQ(R.Timings.size(), 3u);
  EXPECT_EQ(R.Timings[0].S, Stage::Parse);
  EXPECT_EQ(R.Timings[1].S, Stage::Check);
  EXPECT_EQ(R.Timings[2].S, Stage::Emit);
  for (const StageTiming &T : R.Timings)
    EXPECT_GE(T.Seconds, 0.0);
  EXPECT_GE(R.totalSeconds(), R.seconds(Stage::Check));
}

TEST(Driver, InterpExecutesProgram) {
  CompileResult R =
      CompilerPipeline().interp("decl O: bit<32>[1];\nO[0] := 7;");
  ASSERT_TRUE(R.ok()) << R.firstError();
  ASSERT_TRUE(R.Run.has_value());
  EXPECT_TRUE(bool(R.Run->Result));
  EXPECT_GT(R.Run->Steps, 0u);
  auto [Bank, Off] = R.Lowered->Mems.at("O").locate({0});
  EXPECT_EQ(std::get<int64_t>(
                R.Run->Final.Mems.at(Bank).at(static_cast<size_t>(Off))),
            7);
}

TEST(Driver, InterpHonorsFillOption) {
  PipelineOptions Opts;
  Opts.Fill = +[](const std::string &, int64_t I) { return 100 + I; };
  CompileResult R = CompilerPipeline(Opts).interp(
      "decl A: bit<32>[2];\ndecl O: bit<32>[1];\nlet x = A[1]\n---\n"
      "O[0] := x;");
  ASSERT_TRUE(R.ok()) << R.firstError();
  auto [Bank, Off] = R.Lowered->Mems.at("O").locate({0});
  EXPECT_EQ(std::get<int64_t>(
                R.Run->Final.Mems.at(Bank).at(static_cast<size_t>(Off))),
            101);
}

TEST(Driver, DiagnosticsRenderWithInputName) {
  CompileResult R =
      CompilerPipeline().check("decl A: float[10]; let x = A[0]; A[1] := 1.0;");
  ASSERT_FALSE(R.ok());
  std::string Rendered = R.Diags.render("kernel.fuse");
  EXPECT_NE(Rendered.find("kernel.fuse: "), std::string::npos);
  EXPECT_EQ(R.Diags.render().find("kernel.fuse"), std::string::npos);
  EXPECT_FALSE(R.firstError().empty());
}

TEST(Driver, ChecksSourceHelpers) {
  EXPECT_TRUE(checksSource("decl A: float[4]; A[0] := 1.0;"));
  std::string Why;
  EXPECT_FALSE(
      checksSource("decl A: float[10]; let x = A[0]; A[1] := 1.0;", Why));
  EXPECT_FALSE(Why.empty());
  EXPECT_TRUE(checkBareCommand("let x = 1; x := x + 1;").empty());
  EXPECT_FALSE(checkBareCommand("let A: float[4]; let B = A;").empty());
}

TEST(Driver, EstimateStageProducesCosts) {
  CompileResult R = CompilerPipeline().estimate(
      kernels::gemmBlockedDahlia(kernels::GemmBlockedConfig()));
  ASSERT_TRUE(R.ok()) << R.firstError();
  ASSERT_TRUE(R.Est.has_value());
  EXPECT_GT(R.Est->Cycles, 0.0);
  EXPECT_GT(R.Est->Lut, 0);
}

TEST(Driver, SpecExtractorReadsKernelStructure) {
  CompileResult R = CompilerPipeline().check(DotProduct);
  ASSERT_TRUE(R.ok()) << R.firstError();
  Result<hlsim::KernelSpec> Spec = extractKernelSpec(*R.Prog, "dot");
  ASSERT_TRUE(bool(Spec)) << (Spec ? "" : Spec.error().str());
  EXPECT_EQ(Spec->Name, "dot");
  ASSERT_EQ(Spec->Arrays.size(), 3u);
  EXPECT_EQ(Spec->Arrays[0].Name, "A");
  EXPECT_EQ(Spec->Arrays[0].DimSizes, (std::vector<int64_t>{8}));
  EXPECT_EQ(Spec->Arrays[0].Partition, (std::vector<int64_t>{4}));
  ASSERT_EQ(Spec->Loops.size(), 1u);
  EXPECT_EQ(Spec->Loops[0].Trip, 8);
  EXPECT_EQ(Spec->Loops[0].Unroll, 4);
  EXPECT_TRUE(Spec->HasAccumulator); // the combine block
  EXPECT_TRUE(Spec->FloatingPoint);
  EXPECT_GE(Spec->MulOps, 1u);
  // The body reads A[i] and B[i] and writes out[0].
  bool SawARead = false, SawOutWrite = false;
  for (const hlsim::Access &A : Spec->Body) {
    SawARead |= A.Array == "A" && !A.IsWrite;
    SawOutWrite |= A.Array == "out" && A.IsWrite;
  }
  EXPECT_TRUE(SawARead);
  EXPECT_TRUE(SawOutWrite);
}

TEST(Driver, SpecExtractorRejectsUnestimableProgram) {
  CompileResult R = CompilerPipeline().check("let x = 1; let y = x + 1;");
  ASSERT_TRUE(R.ok());
  EXPECT_FALSE(bool(extractKernelSpec(*R.Prog)));
}

} // namespace
