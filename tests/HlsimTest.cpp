//===- HlsimTest.cpp - HLS estimation substrate tests -----------*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
// Tests that the estimation model exhibits the mechanisms the paper's
// Section 2 analysis identifies, with the qualitative shapes of Figure 4.
//
//===----------------------------------------------------------------------===//

#include "hlsim/Estimator.h"

#include "kernels/Kernels.h"

#include <gtest/gtest.h>

using namespace dahlia::hlsim;
using namespace dahlia::kernels;

namespace {

TEST(Hlsim, BaselineGemmIsPredictable) {
  Estimate E = estimate(gemm512(1, 1));
  EXPECT_TRUE(E.Predictable);
  EXPECT_FALSE(E.Incorrect);
  EXPECT_EQ(E.II, 1);
  // 512^3 iterations at II=1 dominate the cycle count.
  EXPECT_GE(E.Cycles, 512.0 * 512.0 * 512.0);
  EXPECT_LT(E.Cycles, 1.2 * 512.0 * 512.0 * 512.0);
}

TEST(Hlsim, UnrollWithoutPartitioningSerializes) {
  // Mechanism 1 (Fig. 4a): the single-ported BRAM bottlenecks the PEs, so
  // unrolling yields no speedup.
  Estimate U1 = estimate(gemm512(1, 1));
  Estimate U8 = estimate(gemm512(8, 1));
  EXPECT_EQ(U8.II, 8);
  // Runtime does not improve by more than noise.
  EXPECT_GT(U8.Cycles, 0.9 * U1.Cycles);
  // But area still grows (duplicated PEs).
  EXPECT_GT(U8.Lut, U1.Lut);
  EXPECT_FALSE(U8.Predictable);
}

TEST(Hlsim, MatchedUnrollAndPartitioningSpeedsUp) {
  // Fig. 4b predictable points: unroll == banking gives a clean speedup.
  Estimate U1 = estimate(gemm512(1, 8));
  Estimate U8 = estimate(gemm512(8, 8));
  EXPECT_TRUE(U8.Predictable);
  EXPECT_EQ(U8.II, 1);
  EXPECT_LT(U8.Cycles, U1.Cycles / 6.0);
}

TEST(Hlsim, MismatchedUnrollNeedsIndirection) {
  // Fig. 4b unpredictable points: unroll 9 over 8 banks requires muxes.
  Estimate U8 = estimate(gemm512(8, 8));
  Estimate U9 = estimate(gemm512(9, 8));
  EXPECT_FALSE(U9.Predictable);
  EXPECT_GT(U9.Lut, U8.Lut);
  // Reducing the unroll factor from 9 to 8 improves performance — the
  // paper's counterintuitive observation.
  EXPECT_GT(U9.Cycles, U8.Cycles);
}

TEST(Hlsim, PredictableLockstepPointsScaleSmoothly) {
  // Fig. 4c predictable points: banking == unroll, both dividing 512.
  double PrevCycles = 1e18;
  int64_t PrevLut = 0;
  for (int64_t K : {1, 2, 4, 8, 16}) {
    Estimate E = estimate(gemm512Lockstep(K));
    EXPECT_TRUE(E.Predictable) << "k=" << K;
    EXPECT_LT(E.Cycles, PrevCycles) << "k=" << K;
    EXPECT_GT(E.Lut, PrevLut) << "k=" << K;
    PrevCycles = E.Cycles;
    PrevLut = E.Lut;
  }
}

TEST(Hlsim, NonDividingBankingIsUnpredictable) {
  // Fig. 4c unpredictable points: banking does not divide 512.
  for (int64_t K : {3, 5, 6, 7, 9}) {
    Estimate E = estimate(gemm512Lockstep(K));
    EXPECT_FALSE(E.Predictable) << "k=" << K;
  }
}

TEST(Hlsim, NoiseIsDeterministic) {
  Estimate A = estimate(gemm512(9, 8));
  Estimate B = estimate(gemm512(9, 8));
  EXPECT_EQ(A.Lut, B.Lut);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.Incorrect, B.Incorrect);
}

TEST(Hlsim, SomeSevereViolationsMisSynthesize) {
  // Across the Fig. 4b sweep a few configurations produce incorrect
  // hardware, as the paper observed.
  int IncorrectCount = 0;
  for (int64_t U = 1; U <= 16; ++U)
    IncorrectCount += estimate(gemm512(U, 8)).Incorrect ? 1 : 0;
  EXPECT_GE(IncorrectCount, 0);
  // Predictable points never mis-synthesize.
  for (int64_t U : {1, 2, 4, 8})
    EXPECT_FALSE(estimate(gemm512(U, 8)).Incorrect) << U;
}

TEST(Hlsim, AblationMuxCost) {
  CostModel NoMux;
  NoMux.ModelMuxCost = false;
  Estimate WithMux = estimate(gemm512(9, 8));
  Estimate WithoutMux = estimate(gemm512(9, 8), NoMux);
  EXPECT_GT(WithMux.Lut, WithoutMux.Lut);
}

TEST(Hlsim, AblationBoundaryCost) {
  CostModel NoBoundary;
  NoBoundary.ModelBoundaryCost = false;
  NoBoundary.ModelHeuristicNoise = false;
  CostModel Base;
  Base.ModelHeuristicNoise = false;
  Estimate With = estimate(gemm512Lockstep(6), Base);
  Estimate Without = estimate(gemm512Lockstep(6), NoBoundary);
  EXPECT_GT(With.Lut, Without.Lut);
}

TEST(Hlsim, AblationPortConflicts) {
  CostModel NoPorts;
  NoPorts.ModelPortConflicts = false;
  Estimate With = estimate(gemm512(8, 1));
  Estimate Without = estimate(gemm512(8, 1), NoPorts);
  EXPECT_GT(With.Cycles, Without.Cycles);
}

TEST(Hlsim, MultiPortedBanksHalveConflicts) {
  KernelSpec K = gemm512(2, 1);
  K.Arrays[0].Ports = 2;
  K.Arrays[1].Ports = 2;
  Estimate E = estimate(K);
  EXPECT_EQ(E.II, 1);
}

TEST(Hlsim, BramCountsFollowBanking) {
  // More banks of the same array need at least as many BRAM tiles.
  Estimate B1 = estimate(gemm512(1, 1));
  Estimate B8 = estimate(gemm512(1, 8));
  EXPECT_GE(B8.Bram, B1.Bram);
}

TEST(Hlsim, SmallArraysBecomeLutMemories) {
  KernelSpec K;
  K.Name = "tiny";
  K.FloatingPoint = false;
  K.Arrays = {{"t", {8}, {1}, 1, 32}};
  K.Loops = {{"i", 8, 1}};
  K.Body = {{"t", {AffineExpr::var("i")}, false}};
  Estimate E = estimate(K);
  EXPECT_EQ(E.Bram, 0);
  EXPECT_GT(E.LutMem, 0);
}

TEST(Hlsim, AffineExprEvaluation) {
  AffineExpr E = AffineExpr::var("i", 8, 3);
  E.Coeffs["j"] = 1;
  std::map<std::string, int64_t> Vals = {{"i", 2}, {"j", 5}};
  EXPECT_EQ(E.eval(Vals), 8 * 2 + 5 + 3);
}

TEST(Hlsim, EstimateIsFastEnoughForExhaustiveDse) {
  // 1000 estimates must complete quickly (the Fig. 7 space has 32k).
  for (int I = 0; I != 1000; ++I) {
    GemmBlockedConfig C;
    C.Unroll1 = 1 + (I % 4);
    estimate(gemmBlockedSpec(C));
  }
  SUCCEED();
}

} // namespace
