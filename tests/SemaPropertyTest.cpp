//===- SemaPropertyTest.cpp - Acceptance-law property sweeps ----*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
// Parameterized sweeps pinning the type system's acceptance *laws* — the
// "unwritten rules" the paper makes explicit — across ranges of sizes,
// banking factors, unroll factors, ports, and view parameters.
//
//===----------------------------------------------------------------------===//

#include "driver/CompilerPipeline.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace dahlia;

namespace {

bool acceptsSrc(const std::string &Src) {
  driver::CompileResult R = driver::CompilerPipeline().check(Src);
  EXPECT_FALSE(R.Diags.hasKind(ErrorKind::Parse) ||
               R.Diags.hasKind(ErrorKind::Lex))
      << R.firstError() << "\n" << Src;
  return R.ok();
}

//===----------------------------------------------------------------------===//
// Law 1: a banking factor must divide the array size.
//===----------------------------------------------------------------------===//

class BankingDividesSize
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BankingDividesSize, DeclarationAcceptedIffDivides) {
  auto [Size, Banks] = GetParam();
  std::ostringstream OS;
  OS << "let A: float[" << Size << " bank " << Banks << "];";
  EXPECT_EQ(acceptsSrc(OS.str()), Size % Banks == 0)
      << "size=" << Size << " banks=" << Banks;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BankingDividesSize,
                         ::testing::Combine(::testing::Values(8, 12, 16, 30),
                                            ::testing::Range(1, 9)));

//===----------------------------------------------------------------------===//
// Law 2: unrolled access requires unroll == banking (or a shrink view).
//===----------------------------------------------------------------------===//

class UnrollMatchesBanking
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(UnrollMatchesBanking, DirectAccess) {
  auto [Banks, Unroll] = GetParam();
  // Size 24 is divisible by every swept banking factor and trip count by
  // every swept unroll factor.
  std::ostringstream OS;
  OS << "let A: float[24 bank " << Banks << "];\n"
     << "for (let i = 0..24) unroll " << Unroll << " { A[i] := 1.0; }";
  bool Expect = Unroll == 1 || Unroll == Banks;
  EXPECT_EQ(acceptsSrc(OS.str()), Expect)
      << "banks=" << Banks << " unroll=" << Unroll;
}

INSTANTIATE_TEST_SUITE_P(Sweep, UnrollMatchesBanking,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4, 6),
                                            ::testing::Values(1, 2, 3, 4, 6)));

class UnrollDividesTrip : public ::testing::TestWithParam<int> {};

TEST_P(UnrollDividesTrip, LoopAcceptedIffDivides) {
  int Unroll = GetParam();
  std::ostringstream OS;
  OS << "let A: float[12 bank " << Unroll << "];\n"
     << "for (let i = 0..12) unroll " << Unroll << " { A[i] := 1.0; }";
  // Banking always divides 12 here only for divisors; combine both laws.
  bool Expect = 12 % Unroll == 0;
  EXPECT_EQ(acceptsSrc(OS.str()), Expect) << "unroll=" << Unroll;
}

INSTANTIATE_TEST_SUITE_P(Sweep, UnrollDividesTrip, ::testing::Range(1, 13));

//===----------------------------------------------------------------------===//
// Law 3: static indices map to banks round-robin; two accesses conflict
// iff they land in the same bank.
//===----------------------------------------------------------------------===//

class StaticBankLaw
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(StaticBankLaw, PairOfWrites) {
  auto [Banks, I, J] = GetParam();
  if (I == J)
    GTEST_SKIP() << "same location covered by capability tests";
  std::ostringstream OS;
  OS << "let A: float[24 bank " << Banks << "];\n"
     << "A[" << I << "] := 1.0; A[" << J << "] := 2.0;";
  bool Expect = (I % Banks) != (J % Banks);
  EXPECT_EQ(acceptsSrc(OS.str()), Expect)
      << "banks=" << Banks << " i=" << I << " j=" << J;
}

INSTANTIATE_TEST_SUITE_P(Sweep, StaticBankLaw,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Values(0, 1, 5),
                                            ::testing::Values(2, 3, 7)));

//===----------------------------------------------------------------------===//
// Law 4: k ports per bank allow exactly k same-bank accesses per step.
//===----------------------------------------------------------------------===//

class PortCapacity : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PortCapacity, DistinctReadsUpToPortCount) {
  auto [Ports, Accesses] = GetParam();
  std::ostringstream OS;
  OS << "let A: float{" << Ports << "}[16];\n";
  for (int K = 0; K != Accesses; ++K)
    OS << "let x" << K << " = A[" << K << "];\n";
  EXPECT_EQ(acceptsSrc(OS.str()), Accesses <= Ports)
      << "ports=" << Ports << " accesses=" << Accesses;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PortCapacity,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 2, 3, 4)));

//===----------------------------------------------------------------------===//
// Law 5: shrink views divide the banking factor and re-enable exactly the
// matching unroll factor.
//===----------------------------------------------------------------------===//

class ShrinkLaw : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ShrinkLaw, FactorMustDivideBanking) {
  auto [Banks, Factor] = GetParam();
  std::ostringstream OS;
  OS << "let A: float[24 bank " << Banks << "];\n"
     << "view sh = shrink A[by " << Factor << "];";
  EXPECT_EQ(acceptsSrc(OS.str()), Banks % Factor == 0)
      << "banks=" << Banks << " factor=" << Factor;
}

TEST_P(ShrinkLaw, ShrunkViewAcceptsMatchingUnroll) {
  auto [Banks, Factor] = GetParam();
  if (Banks % Factor != 0)
    GTEST_SKIP() << "illegal shrink";
  int64_t ViewBanks = Banks / Factor;
  if (24 % ViewBanks != 0 || ViewBanks == 1)
    GTEST_SKIP();
  std::ostringstream OS;
  OS << "let A: float[24 bank " << Banks << "];\n"
     << "view sh = shrink A[by " << Factor << "];\n"
     << "for (let i = 0..24) unroll " << ViewBanks
     << " { let x = sh[i]; }";
  EXPECT_TRUE(acceptsSrc(OS.str()))
      << "banks=" << Banks << " factor=" << Factor;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShrinkLaw,
                         ::testing::Combine(::testing::Values(2, 4, 6, 8),
                                            ::testing::Values(1, 2, 3, 4)));

//===----------------------------------------------------------------------===//
// Law 6: aligned suffixes need offsets that are multiples of the banking
// factor; shifts take anything but monopolize the access route.
//===----------------------------------------------------------------------===//

class SuffixAlignment
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SuffixAlignment, ConstantOffsets) {
  auto [Banks, Offset] = GetParam();
  std::ostringstream OS;
  OS << "let A: float[24 bank " << Banks << "];\n"
     << "view s = suffix A[by " << Offset << "];\n"
     << "let x = s[0];";
  EXPECT_EQ(acceptsSrc(OS.str()), Offset % Banks == 0)
      << "banks=" << Banks << " offset=" << Offset;
}

TEST_P(SuffixAlignment, ScaledIteratorOffsets) {
  auto [Banks, Scale] = GetParam();
  std::ostringstream OS;
  OS << "let A: float[24 bank " << Banks << "];\n"
     << "for (let i = 0..4) {\n"
     << "  view s = suffix A[by " << Scale << " * i];\n"
     << "  let x = s[0];\n"
     << "}";
  EXPECT_EQ(acceptsSrc(OS.str()), Scale % Banks == 0)
      << "banks=" << Banks << " scale=" << Scale;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SuffixAlignment,
                         ::testing::Combine(::testing::Values(2, 3, 4),
                                            ::testing::Values(0, 2, 3, 4, 6,
                                                              8)));

//===----------------------------------------------------------------------===//
// Law 7: multi-dimensional consumption is the cross product of the
// per-dimension bank sets.
//===----------------------------------------------------------------------===//

class MultiDimCross
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MultiDimCross, NestedUnrollNeedsBothDims) {
  auto [U1, U2] = GetParam();
  std::ostringstream OS;
  OS << "let M: float[8 bank 2][12 bank 3];\n"
     << "for (let i = 0..8) unroll " << U1 << " {\n"
     << "  for (let j = 0..12) unroll " << U2 << " {\n"
     << "    M[i][j] := 0.0;\n"
     << "  }\n"
     << "}";
  bool Expect = (U1 == 1 || U1 == 2) && (U2 == 1 || U2 == 3);
  EXPECT_EQ(acceptsSrc(OS.str()), Expect) << "u1=" << U1 << " u2=" << U2;
}

INSTANTIATE_TEST_SUITE_P(Sweep, MultiDimCross,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 2, 3, 4)));

//===----------------------------------------------------------------------===//
// Law 8: ordered composition is associative in effect — nesting `---`
// differently does not change acceptance.
//===----------------------------------------------------------------------===//

TEST(SemaAlgebra, SeqNestingIrrelevantForAcceptance) {
  const char *Flat = "let A: float[4];\n"
                     "let a = A[0] --- let b = A[1] --- let c = A[2];";
  const char *LeftNested = "let A: float[4];\n"
                           "{ let a = A[0] --- let b = A[1] }\n"
                           "--- let c = A[2];";
  const char *RightNested = "let A: float[4];\n"
                            "let a = A[0] ---\n"
                            "{ let b = A[1] --- let c = A[2] }";
  EXPECT_TRUE(acceptsSrc(Flat));
  EXPECT_TRUE(acceptsSrc(LeftNested));
  EXPECT_TRUE(acceptsSrc(RightNested));
}

TEST(SemaAlgebra, ParOrderIrrelevantForAcceptance) {
  // Unordered composition: acceptance must not depend on statement order
  // for independent accesses.
  EXPECT_TRUE(acceptsSrc("let A: float[4 bank 2];\n"
                         "A[0] := 1.0; A[1] := 2.0;"));
  EXPECT_TRUE(acceptsSrc("let A: float[4 bank 2];\n"
                         "A[1] := 2.0; A[0] := 1.0;"));
  EXPECT_FALSE(acceptsSrc("let A: float[4 bank 2];\n"
                          "A[0] := 1.0; A[2] := 2.0;"));
  EXPECT_FALSE(acceptsSrc("let A: float[4 bank 2];\n"
                          "A[2] := 2.0; A[0] := 1.0;"));
}

TEST(SemaAlgebra, CheckingIsDeterministic) {
  // The same program yields the same diagnostics on repeated runs.
  const char *Src = "let A: float[10 bank 2];\n"
                    "for (let i = 0..10) unroll 4 { A[i] := 1.0; }";
  driver::CompilerPipeline Pipeline;
  driver::CompileResult R1 = Pipeline.check(Src);
  driver::CompileResult R2 = Pipeline.check(Src);
  ASSERT_EQ(R1.Diags.errorCount(), R2.Diags.errorCount());
  EXPECT_EQ(R1.Diags.render(), R2.Diags.render());
}

} // namespace
