//===- BackendTest.cpp - HLS C++ emission tests -----------------*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "driver/CompilerPipeline.h"

#include "kernels/Kernels.h"

#include <gtest/gtest.h>

using namespace dahlia;
using namespace dahlia::kernels;

namespace {

std::string emitOK(std::string_view Src,
                   const EmitOptions &Opts = EmitOptions()) {
  driver::PipelineOptions PO;
  PO.Emit = Opts;
  driver::CompileResult R = driver::CompilerPipeline(PO).emitHls(Src);
  EXPECT_TRUE(R.ok()) << R.firstError();
  return R.ok() ? std::move(*R.HlsCpp) : "";
}

bool contains(const std::string &Haystack, std::string_view Needle) {
  return Haystack.find(Needle) != std::string::npos;
}

TEST(Backend, PartitionPragmaFromBanking) {
  std::string Cpp = emitOK("decl A: bit<32>[8 bank 4]; A[0] := 1;");
  EXPECT_TRUE(contains(
      Cpp, "#pragma HLS ARRAY_PARTITION variable=A cyclic factor=4 dim=1"))
      << Cpp;
  EXPECT_TRUE(contains(Cpp, "ap_int<32> A[8]")) << Cpp;
}

TEST(Backend, UnrollPragmaFromUnrollFactor) {
  std::string Cpp = emitOK("decl A: float[8 bank 4];\n"
                           "for (let i = 0..8) unroll 4 { A[i] := 1.0; }");
  EXPECT_TRUE(contains(Cpp, "#pragma HLS UNROLL factor=4")) << Cpp;
  EXPECT_TRUE(contains(Cpp, "for (int i = 0; i < 8; i++)")) << Cpp;
}

TEST(Backend, MultiDimPartitionPragmas) {
  std::string Cpp = emitOK("decl M: float[4 bank 2][6 bank 3]; M[0][0] := 1.0;");
  EXPECT_TRUE(contains(Cpp, "cyclic factor=2 dim=1")) << Cpp;
  EXPECT_TRUE(contains(Cpp, "cyclic factor=3 dim=2")) << Cpp;
}

TEST(Backend, MultiPortedResourcePragma) {
  std::string Cpp =
      emitOK("decl A: float{2}[10]; let x = A[0]; A[1] := x + 1;");
  EXPECT_TRUE(contains(Cpp, "core=RAM_2P_BRAM")) << Cpp;
}

TEST(Backend, ShrinkViewCompilesToDirectAccess) {
  // Paper: "The access sh[i] compiles to A[i]".
  std::string Cpp = emitOK("decl A: float[8 bank 4];\n"
                           "view sh = shrink A[by 2];\n"
                           "for (let i = 0..8) unroll 2 { let x = sh[i]; }");
  EXPECT_TRUE(contains(Cpp, "A[i]")) << Cpp;
  EXPECT_FALSE(contains(Cpp, "sh[i]")) << Cpp;
}

TEST(Backend, SuffixViewAddsOffset) {
  // Paper: view v = suffix M[by k*e] accessed v[i] compiles to M[k*e + i].
  std::string Cpp = emitOK("decl A: float[8 bank 2];\n"
                           "for (let i = 0..4) {\n"
                           "  view s = suffix A[by 2 * i];\n"
                           "  let x = s[1];\n"
                           "}");
  EXPECT_TRUE(contains(Cpp, "A[((2 * i) + 1)]")) << Cpp;
}

TEST(Backend, SplitViewAddressArithmetic) {
  std::string Cpp = emitOK("decl A: bit<32>[12 bank 4];\n"
                           "view sp = split A[by 2];\n"
                           "let x = sp[0][3];");
  // (b / w) * B + a * w + b % w with w=2, B=4.
  EXPECT_TRUE(contains(Cpp, "((3 / 2) * 4 + 0 * 2 + (3 % 2))")) << Cpp;
}

TEST(Backend, TimeStepBoundariesAreComments) {
  std::string Cpp = emitOK("decl A: float[4];\nlet x = A[0]\n---\nA[1] := x;");
  EXPECT_TRUE(contains(Cpp, "logical time step boundary")) << Cpp;
}

TEST(Backend, CombineBlockInlinedAsReduction) {
  std::string Cpp = emitOK("decl A: float[8 bank 2]; decl B: float[8 bank 2];\n"
                           "let dot = 0.0;\n"
                           "for (let i = 0..8) unroll 2 {\n"
                           "  let v = A[i] * B[i];\n"
                           "} combine { dot += v; }");
  EXPECT_TRUE(contains(Cpp, "dot += v;")) << Cpp;
}

TEST(Backend, FunctionsEmitted) {
  std::string Cpp = emitOK(
      "def f(m: float[4], v: float) { m[0] := v; }\n"
      "decl A: float[4];\n"
      "f(A, 1.0);");
  EXPECT_TRUE(contains(Cpp, "void f(float m[4], float v)")) << Cpp;
  EXPECT_TRUE(contains(Cpp, "f(A, 1.0);")) << Cpp;
}

TEST(Backend, PragmasCanBeDisabled) {
  EmitOptions Opts;
  Opts.EmitPartitionPragmas = false;
  Opts.EmitUnrollPragmas = false;
  Opts.EmitResourcePragmas = false;
  std::string Cpp = emitOK("decl A: float[8 bank 4];\n"
                           "for (let i = 0..8) unroll 4 { A[i] := 1.0; }",
                           Opts);
  EXPECT_FALSE(contains(Cpp, "#pragma")) << Cpp;
}

TEST(Backend, GemmBlockedPortEmits) {
  GemmBlockedConfig C;
  C.Bank11 = 2;
  C.Bank12 = 2;
  C.Bank21 = 2;
  C.Bank22 = 2;
  C.Unroll1 = 2;
  C.Unroll2 = 2;
  C.Unroll3 = 2;
  std::string Cpp = emitOK(gemmBlockedDahlia(C));
  EXPECT_TRUE(contains(Cpp, "ARRAY_PARTITION variable=m1")) << Cpp;
  EXPECT_TRUE(contains(Cpp, "UNROLL factor=2")) << Cpp;
  // Suffix views become direct accesses with tile offsets.
  EXPECT_TRUE(contains(Cpp, "((8 * kk) + k)")) << Cpp;
}

TEST(Backend, AllMachSuitePortsEmit) {
  for (const MachSuiteBenchmark &B : machSuiteBenchmarks()) {
    driver::CompileResult R =
        driver::CompilerPipeline().emitHls(B.DahliaSource);
    ASSERT_TRUE(R.ok()) << B.Name << ": " << R.firstError();
    EXPECT_FALSE(R.HlsCpp->empty()) << B.Name;
  }
}

} // namespace
