//===- EventLogTest.cpp - Search-journal emission tests ---------*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
// The flight recorder's contract: disabled emission allocates nothing,
// concurrent emission loses nothing (dense journal-wide seq numbers, every
// record present — run under TSan in the nightly CI leg), journals are
// well-framed (journal-begin schema header, journal-end count trailer),
// file-mode journals round-trip through the SearchJournal reader, a
// Threads=1 sweep replays to a byte-identical journal modulo timing
// fields, and why-pruned explanations name the dominating configuration.
//
//===----------------------------------------------------------------------===//

#include "support/EventLog.h"

#include "dse/Journal.h"
#include "dse/SearchStrategy.h"
#include "kernels/Kernels.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <set>
#include <thread>
#include <vector>

using namespace dahlia;
using namespace dahlia::dse;
using namespace dahlia::kernels;

// Global allocation counter: every operator new in the process bumps it,
// so a zero delta across a region proves the region allocated nothing.
// Replacement operators must live at global scope (not in the anonymous
// namespace) to actually replace the default ones.
static std::atomic<size_t> GAllocs{0};

void *operator new(std::size_t Sz) {
  GAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Sz ? Sz : 1))
    return P;
  throw std::bad_alloc();
}

void *operator new[](std::size_t Sz) { return ::operator new(Sz); }

void operator delete(void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }

namespace {

/// Parses one journal line (they are all JSON objects).
Json parseLine(const std::string &Line) {
  std::optional<Json> J = Json::parse(Line);
  EXPECT_TRUE(J && J->isObject()) << "unparseable journal line: " << Line;
  return J ? *J : Json::object();
}

/// The Bank21 = Bank22 = 1 slice of the Figure 7 space (2,000 configs),
/// truncated to \p Limit for test-speed sweeps.
std::shared_ptr<std::vector<GemmBlockedConfig>> sliceSpace(size_t Limit) {
  auto Space = std::make_shared<std::vector<GemmBlockedConfig>>();
  for (const GemmBlockedConfig &C : gemmBlockedSpace())
    if (C.Bank21 == 1 && C.Bank22 == 1) {
      Space->push_back(C);
      if (Space->size() == Limit)
        break;
    }
  return Space;
}

DseProblem sliceProblem(
    const std::shared_ptr<std::vector<GemmBlockedConfig>> &Space) {
  DseProblem P;
  P.Size = Space->size();
  P.Source = [Space](size_t I) { return gemmBlockedDahlia((*Space)[I]); };
  P.Spec = [Space](size_t I) { return gemmBlockedSpec((*Space)[I]); };
  P.EstimateRejected = true; // Every config reaches the estimate ladder.
  return P;
}

/// Runs one sweep with the journal in buffered mode and returns the
/// captured lines.
std::vector<std::string> journaledSweep(const DseProblem &P, StrategyKind K,
                                        unsigned Threads) {
  DseOptions O;
  O.Strategy = K;
  O.Threads = Threads;
  eventlog::journalStartBuffered();
  DseEngine(O).explore(P);
  eventlog::journalStop();
  return eventlog::journalLines();
}

//===----------------------------------------------------------------------===//
// Disabled-mode cost
//===----------------------------------------------------------------------===//

TEST(EventLog, DisabledEmissionAllocatesNothing) {
  ASSERT_FALSE(eventlog::journalActive());
  ASSERT_FALSE(eventlog::enabled());
  size_t Before = GAllocs.load(std::memory_order_relaxed);
  for (int I = 0; I != 1000; ++I)
    if (eventlog::enabled()) // The guard every emission site uses.
      eventlog::emit("enumerated",
                     eventlog::Record().field("config", I));
  size_t After = GAllocs.load(std::memory_order_relaxed);
  EXPECT_EQ(After - Before, 0u)
      << "a disabled journal must cost one load and a branch, not heap";
}

//===----------------------------------------------------------------------===//
// Framing and sequencing
//===----------------------------------------------------------------------===//

TEST(EventLog, BufferedJournalIsFramedAndDenselySequenced) {
  eventlog::journalStartBuffered();
  ASSERT_TRUE(eventlog::journalActive());
  for (int I = 0; I != 5; ++I)
    eventlog::emit("enumerated", eventlog::Record().field("config", I));
  eventlog::journalStop();
  ASSERT_FALSE(eventlog::journalActive());

  std::vector<std::string> Lines = eventlog::journalLines();
  ASSERT_EQ(Lines.size(), 7u); // begin + 5 + end
  EXPECT_EQ(eventlog::journalEventCount(), 7u);

  Json Begin = parseLine(Lines.front());
  EXPECT_EQ(Begin.at("kind").asString(), "journal-begin");
  EXPECT_EQ(Begin.at("schema").asInt(), eventlog::kSchemaVersion);

  Json End = parseLine(Lines.back());
  EXPECT_EQ(End.at("kind").asString(), "journal-end");
  EXPECT_EQ(End.at("events").asInt(), 7);

  int64_t First = parseLine(Lines[0]).at("seq").asInt();
  for (size_t I = 0; I != Lines.size(); ++I)
    EXPECT_EQ(parseLine(Lines[I]).at("seq").asInt(),
              First + static_cast<int64_t>(I))
        << "seq numbers must be dense, line " << I;
}

TEST(EventLog, ConcurrentEmissionLosesNothing) {
  constexpr int Threads = 4, PerThread = 300;
  eventlog::journalStartBuffered();
  std::vector<std::thread> Workers;
  for (int T = 0; T != Threads; ++T)
    Workers.emplace_back([T] {
      for (int I = 0; I != PerThread; ++I)
        if (eventlog::enabled())
          eventlog::emit("estimate", eventlog::Record()
                                         .field("config", T * PerThread + I)
                                         .field("fidelity", "coarse")
                                         .field("cache_hit", false));
    });
  for (std::thread &W : Workers)
    W.join();
  eventlog::journalStop();

  std::vector<std::string> Lines = eventlog::journalLines();
  ASSERT_EQ(Lines.size(), 2u + Threads * PerThread);

  // Dense seq numbers and every (thread-unique) config exactly once:
  // concurrent emitters interleave but never lose or duplicate.
  std::set<int64_t> Seqs, Configs;
  for (const std::string &L : Lines) {
    Json J = parseLine(L);
    Seqs.insert(J.at("seq").asInt());
    if (J.at("kind").asString() == "estimate")
      Configs.insert(J.at("config").asInt());
  }
  EXPECT_EQ(Seqs.size(), Lines.size());
  EXPECT_EQ(*Seqs.rbegin() - *Seqs.begin() + 1,
            static_cast<int64_t>(Lines.size()));
  ASSERT_EQ(Configs.size(), static_cast<size_t>(Threads * PerThread));
  EXPECT_EQ(*Configs.begin(), 0);
  EXPECT_EQ(*Configs.rbegin(), Threads * PerThread - 1);
}

//===----------------------------------------------------------------------===//
// File round-trip
//===----------------------------------------------------------------------===//

TEST(EventLog, FileJournalRoundTripsThroughSearchJournal) {
  std::string Path = testing::TempDir() + "eventlog_roundtrip.jsonl";
  ASSERT_TRUE(eventlog::journalStart(Path));
  for (int I = 0; I != 3; ++I)
    eventlog::emit("enumerated", eventlog::Record().field("config", I));
  eventlog::journalStop();

  std::string Err;
  std::optional<journal::SearchJournal> J =
      journal::SearchJournal::load(Path, &Err);
  ASSERT_TRUE(J) << Err;
  EXPECT_EQ(J->schema(), eventlog::kSchemaVersion);
  ASSERT_EQ(J->events().size(), 5u);
  EXPECT_EQ(J->events().front().Kind, "journal-begin");
  EXPECT_EQ(J->events().back().Kind, "journal-end");
  std::remove(Path.c_str());
}

TEST(EventLog, JournalStartRejectsUnwritablePath) {
  EXPECT_FALSE(eventlog::journalStart("/nonexistent-dir/journal.jsonl"));
  EXPECT_FALSE(eventlog::journalActive());
  EXPECT_FALSE(eventlog::enabled());
}

//===----------------------------------------------------------------------===//
// Sweep journals: replay determinism and why-pruned
//===----------------------------------------------------------------------===//

/// Normalizes a journal for replay comparison: drops the wall-clock
/// records (`progress` fires on a timer, so its count varies run to run)
/// and the timing envelope/payload fields, keeping everything the search
/// itself decided.
std::vector<std::string> normalized(const std::vector<std::string> &Lines) {
  std::vector<std::string> Out;
  for (const std::string &L : Lines) {
    Json J = parseLine(L);
    const std::string &Kind = J.at("kind").asString();
    if (Kind == "progress")
      continue;
    Json N = Json::object();
    for (const auto &[K, V] : J.asObject()) {
      if (K == "seq" || K == "ts_us" || K == "seconds" || K == "events")
        continue;
      N[K] = V;
    }
    Out.push_back(N.dump());
  }
  return Out;
}

TEST(EventLog, SingleThreadSweepJournalReplaysDeterministically) {
  auto Space = sliceSpace(400);
  DseProblem P = sliceProblem(Space);
  std::vector<std::string> A =
      journaledSweep(P, StrategyKind::Halving, /*Threads=*/1);
  std::vector<std::string> B =
      journaledSweep(P, StrategyKind::Halving, /*Threads=*/1);

  std::vector<std::string> NA = normalized(A), NB = normalized(B);
  ASSERT_EQ(NA.size(), NB.size());
  for (size_t I = 0; I != NA.size(); ++I)
    EXPECT_EQ(NA[I], NB[I]) << "journal diverged at record " << I;
}

TEST(EventLog, SweepJournalIsConsistentAndExplainsPrunes) {
  auto Space = sliceSpace(400);
  DseProblem P = sliceProblem(Space);
  std::vector<std::string> Lines =
      journaledSweep(P, StrategyKind::Halving, /*Threads=*/2);

  std::string Err;
  std::optional<journal::SearchJournal> J =
      journal::SearchJournal::parse(Lines, &Err);
  ASSERT_TRUE(J) << Err;
  EXPECT_EQ(J->sweepCount(), 1u);
  EXPECT_TRUE(J->checkConsistent().empty());

  // Find a dominance prune and check whyPruned names its dominator.
  std::optional<uint64_t> Pruned, Dominator;
  for (const journal::Event &E : J->events())
    if (E.Kind == "prune" &&
        E.Fields.at("reason").asString() == "dominated") {
      Pruned = static_cast<uint64_t>(E.Fields.at("config").asInt());
      Dominator = static_cast<uint64_t>(E.Fields.at("dominator").asInt());
      break;
    }
  ASSERT_TRUE(Pruned) << "a 400-config halving sweep must prune something";

  Json W = J->whyPruned(*Pruned);
  EXPECT_EQ(W.at("status").asString(), "pruned");
  EXPECT_EQ(W.at("reason").asString(), "dominated");
  ASSERT_TRUE(W.at("dominator").isObject());
  EXPECT_EQ(static_cast<uint64_t>(W.at("dominator").at("config").asInt()),
            *Dominator);
  EXPECT_NE(W.at("detail").asString().find("dominated by configuration"),
            std::string::npos);

  // A final-front member gets the front-member answer.
  const journal::Event &EndEv = J->events()[J->events().size() - 2];
  ASSERT_EQ(EndEv.Kind, "sweep-end");
  const std::vector<Json> &Front = EndEv.Fields.at("front").asArray();
  ASSERT_FALSE(Front.empty());
  Json FrontW =
      J->whyPruned(static_cast<uint64_t>(Front.front().asInt()));
  EXPECT_EQ(FrontW.at("status").asString(), "front-member");
}

} // namespace
