//===- CycleSimTest.cpp - Cycle-level simulator tests -----------*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
// The cycle-level banked-memory simulator (src/cyclesim/) as the exact
// top rung of the estimation fidelity ladder: determinism, the
// lower-bound contract Coarse <= Medium <= Full <= Exact on every shipped
// kernel spec, exhaustive-vs-sampled schedule derivation, multi-nest and
// while-loop execution, and the DSE exact-top-rung pass.
//
//===----------------------------------------------------------------------===//

#include "cyclesim/CycleSim.h"

#include "driver/CompilerPipeline.h"
#include "driver/SpecExtractor.h"
#include "dse/SearchStrategy.h"
#include "hlsim/Estimator.h"
#include "kernels/Kernels.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace dahlia;
using namespace dahlia::cyclesim;
using namespace dahlia::hlsim;
using namespace dahlia::kernels;

namespace {

/// Every hand-written kernel spec family shipped in src/kernels/.
std::vector<std::pair<std::string, KernelSpec>> specCorpus() {
  std::vector<std::pair<std::string, KernelSpec>> Out;
  for (int64_t U = 1; U <= 10; ++U)
    Out.push_back({"gemm512-u" + std::to_string(U) + "-p1", gemm512(U, 1)});
  for (int64_t U = 1; U <= 16; ++U)
    Out.push_back({"gemm512-u" + std::to_string(U) + "-p8", gemm512(U, 8)});
  for (int64_t K : {1, 2, 3, 5, 6, 8, 9})
    Out.push_back({"gemm512-lockstep" + std::to_string(K),
                   gemm512Lockstep(K)});
  // A deterministic slice of each sweep space.
  {
    std::vector<GemmBlockedConfig> Space = gemmBlockedSpace();
    for (size_t I = 0; I < Space.size(); I += 1777)
      Out.push_back({"gemm-blocked-" + std::to_string(I),
                     gemmBlockedSpec(Space[I])});
  }
  {
    std::vector<Stencil2dConfig> Space = stencil2dSpace();
    for (size_t I = 0; I < Space.size(); I += 271)
      Out.push_back({"stencil2d-" + std::to_string(I),
                     stencil2dSpec(Space[I])});
  }
  {
    std::vector<MdKnnConfig> Space = mdKnnSpace();
    for (size_t I = 0; I < Space.size(); I += 1531)
      Out.push_back({"md-knn-" + std::to_string(I), mdKnnSpec(Space[I])});
  }
  {
    std::vector<MdGridConfig> Space = mdGridSpace();
    for (size_t I = 0; I < Space.size(); I += 997)
      Out.push_back({"md-grid-" + std::to_string(I), mdGridSpec(Space[I])});
  }
  for (const MachSuiteBenchmark &B : machSuiteBenchmarks()) {
    Out.push_back({B.Name + "-baseline", B.Baseline});
    Out.push_back({B.Name + "-rewrite", B.Rewrite});
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// The fidelity-ladder contract
//===----------------------------------------------------------------------===//

TEST(CycleSim, LadderIsMonotoneOnEveryKernelSpec) {
  // Coarse <= Medium <= Full holds component-wise on all objectives, and
  // the simulated (Exact) cycle count caps the ladder; Exact's area is
  // Full's by construction. This is the property that makes promoting DSE
  // survivors to the simulator rung sound.
  for (const auto &[Name, K] : specCorpus()) {
    SCOPED_TRACE(Name);
    Estimate C = estimateAt(K, Fidelity::Coarse);
    Estimate M = estimateAt(K, Fidelity::Medium);
    Estimate F = estimateAt(K, Fidelity::Full);
    Estimate X = estimateAt(K, Fidelity::Exact);
    auto Leq = [](const Estimate &A, const Estimate &B) {
      EXPECT_LE(A.Cycles, B.Cycles);
      EXPECT_LE(A.Lut, B.Lut);
      EXPECT_LE(A.Ff, B.Ff);
      EXPECT_LE(A.Bram, B.Bram);
      EXPECT_LE(A.Dsp, B.Dsp);
    };
    Leq(C, M);
    Leq(M, F);
    Leq(F, X);
    EXPECT_EQ(F.Lut, X.Lut);
    EXPECT_EQ(F.Ff, X.Ff);
    EXPECT_EQ(F.Bram, X.Bram);
    EXPECT_EQ(F.Dsp, X.Dsp);
  }
}

TEST(CycleSim, DeterministicAcrossRuns) {
  for (const auto &[Name, K] :
       {std::pair<std::string, KernelSpec>{"gemm", gemm512(9, 8)},
        {"md-knn", mdKnnSpec(MdKnnConfig())}}) {
    SCOPED_TRACE(Name);
    SimResult A = simulate(K);
    SimResult B = simulate(K);
    EXPECT_EQ(A.Cycles, B.Cycles);
    EXPECT_EQ(A.II, B.II);
    EXPECT_EQ(A.WalkedGroups, B.WalkedGroups);
    ASSERT_EQ(A.Nests.size(), B.Nests.size());
    for (size_t N = 0; N != A.Nests.size(); ++N) {
      EXPECT_EQ(A.Nests[N].II, B.Nests[N].II);
      EXPECT_EQ(A.Nests[N].Cycles, B.Nests[N].Cycles);
      EXPECT_EQ(A.Nests[N].ConflictGroups, B.Nests[N].ConflictGroups);
      EXPECT_EQ(A.Nests[N].StallCycles, B.Nests[N].StallCycles);
    }
  }
}

//===----------------------------------------------------------------------===//
// Schedule derivation
//===----------------------------------------------------------------------===//

TEST(CycleSim, UniformConflictMatchesAnalyticSchedule) {
  // gemm512 unrolled 8x over an unpartitioned array: every group has the
  // same 8-way conflict on the single bank, so the observed II equals the
  // sampled II and the simulated cycle count equals the analytic one.
  KernelSpec K = gemm512(8, 1);
  SimResult S = simulate(K);
  Estimate F = estimateAt(K, Fidelity::Full);
  EXPECT_EQ(S.II, 8.0);
  EXPECT_EQ(S.Cycles, F.Cycles);
  ASSERT_EQ(S.Nests.size(), 1u);
  EXPECT_TRUE(S.Nests[0].PeriodComplete);
  // Every walked group stalls: the arbiter needs 8 cycles per issue.
  EXPECT_EQ(S.Nests[0].ConflictGroups, S.Nests[0].WalkedGroups);
  EXPECT_EQ(S.Nests[0].MaxPortPressure, 8);
}

TEST(CycleSim, ExhaustiveWalkCatchesConflictsTheSampledScanMisses) {
  // A conflict that only materializes at group 16 of a period-17 pattern:
  // the analytic scan samples groups 0..15 and sees II=1; the simulator
  // walks the whole period and derives II=2. This is exactly the gap that
  // makes the simulator the *exact* rung rather than another sample.
  KernelSpec K;
  K.Name = "period17";
  K.FloatingPoint = false;
  K.Arrays = {{"A", {34}, {17}, 1, 32}};
  K.Loops = {{"i", 34, 1}};
  Access R1{"A", {AffineExpr::var("i", 1, 16)}, false};
  Access R2{"A", {AffineExpr::var("i", 2)}, false};
  K.Body = {R1, R2};

  Estimate F = estimateAt(K, Fidelity::Full);
  SimResult S = simulate(K);
  EXPECT_EQ(F.II, 1.0) << "the sampled scan must miss the conflict for "
                          "this test to be meaningful";
  EXPECT_EQ(S.II, 2.0);
  EXPECT_GT(S.Cycles, F.Cycles);
  ASSERT_EQ(S.Nests.size(), 1u);
  EXPECT_EQ(S.Nests[0].WalkedGroups, 17u); // One conflict period.
  EXPECT_EQ(S.Nests[0].ConflictGroups, 1u);
  // The Exact estimate carries the simulated schedule.
  Estimate X = estimateAt(K, Fidelity::Exact);
  EXPECT_EQ(X.Cycles, S.Cycles);
  EXPECT_GE(X.Cycles, F.Cycles);
}

TEST(CycleSim, BankedLockstepRunsConflictFree) {
  KernelSpec K = gemm512(8, 8);
  SimResult S = simulate(K);
  EXPECT_EQ(S.II, 1.0);
  EXPECT_EQ(S.Nests[0].ConflictGroups, 0u);
  EXPECT_EQ(S.Nests[0].StallCycles, 0u);
}

//===----------------------------------------------------------------------===//
// Multi-nest and while-loop execution
//===----------------------------------------------------------------------===//

TEST(CycleSim, MdKnnSimulatesBothPhases) {
  KernelSpec K = mdKnnSpec(MdKnnConfig());
  SimResult S = simulate(K);
  ASSERT_EQ(S.Nests.size(), 2u);
  // Phase 1: the serial gather, 256*16 groups at II=1.
  EXPECT_EQ(S.Nests[0].Groups, 256.0 * 16.0);
  EXPECT_EQ(S.Nests[0].EffectiveII, 1.0);
  // Phase 2: the dependence-bound force nest runs at its iteration
  // latency, not at the conflict-free II.
  EXPECT_EQ(S.Nests[1].EffectiveII, 30.0);
  EXPECT_GE(S.Cycles, S.Nests[0].Cycles + S.Nests[1].Cycles);
}

TEST(CycleSim, KmpWhileLoopRunsToItsTripCount) {
  // The kmp port's counted while is extracted as a bounded serial nest
  // and simulated for its full 32,411 iterations.
  for (const MachSuiteBenchmark &B : machSuiteBenchmarks()) {
    if (B.Name != "kmp")
      continue;
    driver::CompileResult R =
        driver::CompilerPipeline().check(B.DahliaSource);
    ASSERT_TRUE(R.ok()) << R.firstError();
    Result<KernelSpec> Spec = driver::extractKernelSpec(*R.Prog, "kmp");
    ASSERT_TRUE(bool(Spec));
    SimResult S = simulate(*Spec);
    ASSERT_EQ(S.Nests.size(), 1u);
    EXPECT_EQ(S.Nests[0].Groups, 32411.0);
    EXPECT_GE(S.Cycles, 32411.0);
    // And the analytic rungs now price the walk too (the old estimator
    // ignored while trip counts entirely).
    EXPECT_GE(estimateAt(*Spec, Fidelity::Coarse).Cycles, 32411.0);
  }
}

//===----------------------------------------------------------------------===//
// The Exact rung in the cache keyspace
//===----------------------------------------------------------------------===//

TEST(CycleSim, ExactRungHasItsOwnCacheKeys) {
  uint64_t H = specHash(gemm512(4, 4));
  uint64_t KF = fidelityCacheKey(H, Fidelity::Full);
  uint64_t KX = fidelityCacheKey(H, Fidelity::Exact);
  EXPECT_NE(KF, KX);
  EXPECT_NE(fidelityCacheKey(H, Fidelity::Coarse), KX);
  EXPECT_NE(fidelityCacheKey(H, Fidelity::Medium), KX);
}

//===----------------------------------------------------------------------===//
// DSE exact-top-rung pass
//===----------------------------------------------------------------------===//

TEST(CycleSim, ExactTopRungRanksTheFrontByExactCycles) {
  // A deterministic 600-config prefix of the Figure 7 space, explored
  // with and without pruning: both exact-top-rung fronts must agree, and
  // every member must carry the simulator's objectives.
  dse::DseProblem P = gemmBlockedProblem();
  P.Size = 600;

  auto Explore = [&](dse::StrategyKind S) {
    dse::DseOptions O;
    O.Threads = 2;
    O.Strategy = S;
    O.ExactTopRung = true;
    return dse::DseEngine(O).explore(P);
  };
  dse::DseResult Ex = Explore(dse::StrategyKind::Exhaustive);
  dse::DseResult Ha = Explore(dse::StrategyKind::Halving);

  EXPECT_EQ(Ex.Front, Ha.Front);
  EXPECT_EQ(Ex.AcceptedFront, Ha.AcceptedFront);
  EXPECT_GT(Ex.Stats.ExactEstimates, 0u);
  EXPECT_LT(Ha.Stats.ExactEstimates, Ha.Stats.Explored);

  std::vector<GemmBlockedConfig> Space = gemmBlockedSpace();
  for (size_t I : Ex.Front) {
    EXPECT_TRUE(Ex.Points[I].ExactEvaluated) << I;
    Estimate X = estimateAt(gemmBlockedSpec(Space[I]), Fidelity::Exact);
    EXPECT_EQ(Ex.Points[I].Obj.Latency, X.Cycles) << I;
    EXPECT_EQ(Ex.Points[I].Obj.Lut, static_cast<double>(X.Lut)) << I;
  }
}

TEST(CycleSim, ExactTopRungOffLeavesFullFidelityObjectives) {
  dse::DseProblem P = gemmBlockedProblem();
  P.Size = 200;
  dse::DseOptions O;
  O.Threads = 2;
  dse::DseResult R = dse::DseEngine(O).explore(P);
  EXPECT_EQ(R.Stats.ExactEstimates, 0u);
  for (const dse::DsePoint &Pt : R.Points)
    EXPECT_FALSE(Pt.ExactEvaluated);
}

} // namespace
