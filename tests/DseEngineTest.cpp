//===- DseEngineTest.cpp - Parallel exploration engine tests ----*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
// The engine contract: the parallel, memoized exploration must be
// observationally identical to the serial pipeline sweep — same accepted
// set, same Pareto-front membership — at any thread count, with or
// without a warm cache.
//
//===----------------------------------------------------------------------===//

#include "dse/DseEngine.h"

#include "driver/CompilerPipeline.h"
#include "kernels/Kernels.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

using namespace dahlia;
using namespace dahlia::dse;
using namespace dahlia::kernels;

namespace {

Objectives point(double Lat, double Lut) {
  Objectives O;
  O.Latency = Lat;
  O.Lut = Lut;
  return O;
}

/// The Bank21 = Bank22 = 1 slice of the Figure 7 space: 2,000 configs, 11
/// accepted (the analytic count pinned in RegressionAnchorsTest).
std::shared_ptr<std::vector<GemmBlockedConfig>> sliceSpace() {
  auto Space = std::make_shared<std::vector<GemmBlockedConfig>>();
  for (const GemmBlockedConfig &C : gemmBlockedSpace())
    if (C.Bank21 == 1 && C.Bank22 == 1)
      Space->push_back(C);
  return Space;
}

DseProblem sliceProblem(
    const std::shared_ptr<std::vector<GemmBlockedConfig>> &Space) {
  DseProblem P;
  P.Size = Space->size();
  P.Source = [Space](size_t I) { return gemmBlockedDahlia((*Space)[I]); };
  P.Spec = [Space](size_t I) { return gemmBlockedSpec((*Space)[I]); };
  return P;
}

TEST(ParetoFrontIncremental, InsertionOrderIndependent) {
  std::vector<Objectives> Pts;
  for (int I = 0; I != 300; ++I) {
    Objectives O = point((I * 37) % 101, (I * 53) % 97);
    O.Bram = (I * 11) % 7;
    O.Dsp = (I * 29) % 5;
    Pts.push_back(O);
  }
  std::vector<size_t> Batch = paretoFront(Pts);

  ParetoFront Fwd, Bwd, Strided;
  for (size_t I = 0; I != Pts.size(); ++I)
    Fwd.insert(I, Pts[I]);
  for (size_t I = Pts.size(); I-- > 0;)
    Bwd.insert(I, Pts[I]);
  for (size_t Phase = 0; Phase != 7; ++Phase)
    for (size_t I = Phase; I < Pts.size(); I += 7)
      Strided.insert(I, Pts[I]);

  EXPECT_EQ(Fwd.indices(), Batch);
  EXPECT_EQ(Bwd.indices(), Batch);
  EXPECT_EQ(Strided.indices(), Batch);
}

TEST(ParetoFrontIncremental, MergeEqualsBulkInsert) {
  std::vector<Objectives> Pts;
  for (int I = 0; I != 120; ++I)
    Pts.push_back(point((I * 13) % 31, (I * 7) % 29));
  ParetoFront Whole, A, B;
  for (size_t I = 0; I != Pts.size(); ++I) {
    Whole.insert(I, Pts[I]);
    (I % 2 ? A : B).insert(I, Pts[I]);
  }
  A.merge(B);
  EXPECT_EQ(A.indices(), Whole.indices());
}

TEST(ParetoFrontIncremental, InsertExReportsEntriesAndEvictions) {
  ParetoFront F;
  ParetoFront::InsertOutcome O = F.insertEx(0, point(10, 10));
  EXPECT_TRUE(O.Entered);
  EXPECT_TRUE(O.Evicted.empty());

  // Dominated offer: rejected, nothing displaced.
  O = F.insertEx(1, point(20, 20));
  EXPECT_FALSE(O.Entered);
  EXPECT_TRUE(O.Evicted.empty());

  // Incomparable offer: enters alongside.
  O = F.insertEx(2, point(5, 30));
  EXPECT_TRUE(O.Entered);
  EXPECT_TRUE(O.Evicted.empty());

  // Dominating offer: enters and reports both displaced members.
  O = F.insertEx(3, point(4, 9));
  EXPECT_TRUE(O.Entered);
  EXPECT_EQ(O.Evicted, (std::vector<size_t>{0, 2}));
  EXPECT_EQ(F.indices(), (std::vector<size_t>{3}));

  // Equal-vector tie collapses onto the lower index: the higher-index
  // newcomer reports as entered-with-eviction when it wins (it never
  // does against a lower index), and rejected otherwise.
  O = F.insertEx(7, point(4, 9));
  EXPECT_FALSE(O.Entered);
  EXPECT_TRUE(O.Evicted.empty());
  O = F.insertEx(1, point(4, 9));
  EXPECT_TRUE(O.Entered);
  EXPECT_EQ(O.Evicted, (std::vector<size_t>{3}));
  EXPECT_EQ(F.indices(), (std::vector<size_t>{1}));
}

TEST(ParetoFrontIncremental, DominatorOfNamesLowestDominatingMember) {
  ParetoFront F;
  F.insert(4, point(10, 10));
  F.insert(2, point(30, 5));
  F.insert(9, point(5, 30));

  // No member dominates an incomparable or front-beating point.
  EXPECT_FALSE(F.dominatorOf(point(4, 11)).has_value());
  EXPECT_FALSE(F.dominatorOf(point(1, 1)).has_value());
  // Equal vectors do not strictly dominate.
  EXPECT_FALSE(F.dominatorOf(point(10, 10)).has_value());

  // Dominated points name a dominator, consistent with dominatesPoint.
  std::optional<size_t> D = F.dominatorOf(point(11, 11));
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(*D, 4u);
  EXPECT_TRUE(F.dominatesPoint(point(11, 11)));

  // Several members dominate (40,40): the lowest index wins, keeping
  // journal dominator attribution deterministic.
  D = F.dominatorOf(point(40, 40));
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(*D, 2u);
}

TEST(DseEngine, ResolveThreadCount) {
  EXPECT_EQ(resolveThreadCount(5), 5u);
  setenv("DAHLIA_DSE_THREADS", "3", 1);
  EXPECT_EQ(resolveThreadCount(0), 3u);
  EXPECT_EQ(resolveThreadCount(2), 2u); // explicit request wins
  unsetenv("DAHLIA_DSE_THREADS");
  EXPECT_GE(resolveThreadCount(0), 1u);
}

TEST(DseEngine, MatchesSerialPipelineSweepOnSlice) {
  auto Space = sliceSpace();
  ASSERT_EQ(Space->size(), 2000u);

  // Serial reference: the hand-rolled sweep the engine replaces.
  driver::CompilerPipeline Pipeline;
  std::vector<bool> RefAccepted;
  std::vector<Objectives> RefObjs;
  size_t RefAcceptCount = 0;
  for (const GemmBlockedConfig &C : *Space) {
    bool OK = bool(Pipeline.check(gemmBlockedDahlia(C)));
    RefAccepted.push_back(OK);
    RefAcceptCount += OK ? 1 : 0;
    RefObjs.push_back(Objectives::of(hlsim::estimate(gemmBlockedSpec(C))));
  }
  EXPECT_EQ(RefAcceptCount, 11u); // RegressionAnchorsTest's analytic count.

  DseOptions Opts;
  Opts.Threads = 2;
  DseResult R = DseEngine(Opts).explore(sliceProblem(Space));
  ASSERT_EQ(R.Points.size(), Space->size());
  EXPECT_EQ(R.Stats.Accepted, RefAcceptCount);
  for (size_t I = 0; I != Space->size(); ++I) {
    EXPECT_EQ(R.Points[I].Accepted, RefAccepted[I]) << "config " << I;
    EXPECT_TRUE(equalObjectives(R.Points[I].Obj, RefObjs[I])) << I;
  }
  EXPECT_EQ(R.Front, paretoFront(RefObjs));
}

TEST(DseEngine, ThreadCountInvariance) {
  auto Space = sliceSpace();
  DseProblem P = sliceProblem(Space);

  DseResult Ref;
  bool First = true;
  for (unsigned Threads : {1u, 2u, 4u, 7u}) {
    DseOptions Opts;
    Opts.Threads = Threads;
    Opts.GrainSize = 17; // odd grain: exercise stealing boundaries
    DseResult R = DseEngine(Opts).explore(P);
    EXPECT_EQ(R.Stats.Threads, Threads);
    if (First) {
      Ref = std::move(R);
      First = false;
      continue;
    }
    EXPECT_EQ(R.Stats.Accepted, Ref.Stats.Accepted) << Threads;
    EXPECT_EQ(R.Front, Ref.Front) << Threads;
    EXPECT_EQ(R.AcceptedFront, Ref.AcceptedFront) << Threads;
    for (size_t I = 0; I != R.Points.size(); ++I)
      ASSERT_EQ(R.Points[I].Accepted, Ref.Points[I].Accepted)
          << "config " << I << " at " << Threads << " threads";
  }
}

TEST(DseEngine, SharedCacheSecondRunHitsAndAgrees) {
  auto Space = sliceSpace();
  DseProblem P = sliceProblem(Space);
  auto Cache = std::make_shared<DseCache>();

  DseOptions O1;
  O1.Threads = 1;
  O1.Cache = Cache;
  DseResult R1 = DseEngine(O1).explore(P);
  EXPECT_EQ(R1.Stats.VerdictCacheHits, 0u);

  DseOptions O4;
  O4.Threads = 4;
  O4.Cache = Cache;
  DseResult R4 = DseEngine(O4).explore(P);
  // Every verdict and estimate is served from the warm cache.
  EXPECT_EQ(R4.Stats.VerdictCacheHits, P.Size);
  EXPECT_EQ(R4.Stats.EstimateCacheHits, P.Size);
  EXPECT_EQ(R4.Stats.Accepted, R1.Stats.Accepted);
  EXPECT_EQ(R4.Front, R1.Front);
  EXPECT_EQ(R4.AcceptedFront, R1.AcceptedFront);
}

TEST(DseEngine, MemoizationOffStillAgrees) {
  auto Space = sliceSpace();
  DseProblem P = sliceProblem(Space);
  DseOptions NoMemo;
  NoMemo.Threads = 2;
  NoMemo.Memoize = false;
  DseResult A = DseEngine(NoMemo).explore(P);
  EXPECT_EQ(A.Stats.EstimateCacheHits, 0u);
  DseResult B = DseEngine().explore(P);
  EXPECT_EQ(A.Stats.Accepted, B.Stats.Accepted);
  EXPECT_EQ(A.Front, B.Front);
}

TEST(DseEngine, CheckerDirectedModeSkipsRejectedEstimates) {
  // EstimateRejected = false is the Figure 8 methodology: rejected points
  // carry no estimate, and the overall front equals the accepted front.
  auto Space = sliceSpace();
  DseProblem P = sliceProblem(Space);
  P.EstimateRejected = false;
  DseOptions Opts;
  Opts.Threads = 2;
  DseResult R = DseEngine(Opts).explore(P);
  EXPECT_EQ(R.Stats.Estimated, R.Stats.Accepted);
  EXPECT_EQ(R.Front, R.AcceptedFront);
  for (size_t I = 0; I != R.Points.size(); ++I)
    EXPECT_EQ(R.Points[I].Estimated, R.Points[I].Accepted) << I;
}

TEST(DseEngine, FullFigure7SpaceAnchors) {
  // The headline Section 5.2 sweep through the engine. Under this
  // checker's rules 153 of 32,000 configurations are accepted (the paper
  // reports 354/32,000 for the original implementation; see the E4
  // anchor in RegressionAnchorsTest). The front must be identical across
  // thread counts; the shared cache makes the second pass near-free.
  auto Cache = std::make_shared<DseCache>();
  DseOptions O4;
  O4.Threads = 4;
  O4.Cache = Cache;
  DseResult R4 = DseEngine(O4).explore(gemmBlockedProblem());
  EXPECT_EQ(R4.Stats.Explored, 32000u);
  EXPECT_EQ(R4.Stats.Accepted, 153u);
  EXPECT_GT(R4.Stats.configsPerSecond(), 0.0);

  DseOptions O1;
  O1.Threads = 1;
  O1.Cache = Cache;
  DseResult R1 = DseEngine(O1).explore(gemmBlockedProblem());
  EXPECT_EQ(R1.Stats.Accepted, R4.Stats.Accepted);
  EXPECT_EQ(R1.Front, R4.Front);
  EXPECT_EQ(R1.AcceptedFront, R4.AcceptedFront);
}

} // namespace
