//===- HlsimPropertyTest.cpp - Estimator property sweeps --------*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
// Property tests for the HLS estimation substrate: the analytic bank-
// reachability analysis is cross-validated against brute-force iteration,
// predictable subsets behave monotonically, and the noise model touches
// only rule-violating configurations.
//
//===----------------------------------------------------------------------===//

#include "hlsim/Estimator.h"
#include "kernels/Kernels.h"

#include <gtest/gtest.h>

#include <set>

using namespace dahlia::hlsim;
using namespace dahlia::kernels;

namespace {

/// Brute-force: run every iteration of a (small) kernel and record, for
/// each access instance (identified by its unrolled offsets resolved into
/// the index constants), the flat bank it actually touches.
std::set<int64_t> bruteForceBanks(const KernelSpec &K, const Access &A,
                                  const std::vector<int64_t> &PeOffsets) {
  const ArraySpec *Arr = K.findArray(A.Array);
  std::set<int64_t> Banks;
  // Enumerate all sequential iteration points.
  std::vector<int64_t> Groups;
  for (const Loop &L : K.Loops)
    Groups.push_back(L.Trip / L.Unroll);
  std::vector<int64_t> T(K.Loops.size(), 0);
  while (true) {
    std::map<std::string, int64_t> Vals;
    for (size_t L = 0; L != K.Loops.size(); ++L)
      Vals[K.Loops[L].Var] = K.Loops[L].Unroll * T[L] + PeOffsets[L];
    int64_t Flat = 0;
    for (size_t D = 0; D != A.Idx.size(); ++D) {
      int64_t P = Arr->Partition[D];
      int64_t V = A.Idx[D].eval(Vals) % P;
      Flat = Flat * P + (V < 0 ? V + P : V);
    }
    Banks.insert(Flat);
    // Advance the odometer.
    size_t L = K.Loops.size();
    while (L-- > 0) {
      if (++T[L] < Groups[L])
        break;
      T[L] = 0;
      if (L == 0)
        return Banks;
    }
    if (L == SIZE_MAX)
      return Banks;
  }
}

/// A small parameterized kernel shape for the cross-validation.
KernelSpec smallKernel(int64_t Trip, int64_t Unroll, int64_t Partition,
                       int64_t Coeff, int64_t Offset) {
  KernelSpec K;
  K.Name = "prop";
  K.FloatingPoint = false;
  K.Arrays = {{"a", {Trip * std::max<int64_t>(Coeff, 1) + 64},
               {Partition}, 1, 32}};
  K.Loops = {{"i", Trip, Unroll}};
  K.Body = {{"a", {AffineExpr::var("i", Coeff, Offset)}, false}};
  return K;
}

class ReachCrossValidation
    : public ::testing::TestWithParam<
          std::tuple<int64_t, int64_t, int64_t, int64_t>> {};

TEST_P(ReachCrossValidation, AnalyticReachCoversBruteForce) {
  auto [Unroll, Partition, Coeff, Offset] = GetParam();
  const int64_t Trip = 24;
  if (Trip % Unroll != 0)
    GTEST_SKIP();
  KernelSpec K = smallKernel(Trip, Unroll, Partition, Coeff, Offset);
  // The estimator reports conflicts through II; here we validate the
  // underlying reach analysis indirectly: brute-force banks for every PE
  // must stay within the partition range, and the estimator must accept
  // the kernel without crashing and produce a deterministic result.
  for (int64_t J = 0; J != Unroll; ++J) {
    std::set<int64_t> Banks = bruteForceBanks(K, K.Body[0], {J});
    for (int64_t B : Banks) {
      EXPECT_GE(B, 0);
      EXPECT_LT(B, Partition);
    }
  }
  Estimate E1 = estimate(K);
  Estimate E2 = estimate(K);
  EXPECT_EQ(E1.Lut, E2.Lut);
  EXPECT_EQ(E1.Cycles, E2.Cycles);
  // The sampled II can never exceed the absolute worst case: every access
  // instance on one bank.
  EXPECT_LE(E1.II, static_cast<double>(Unroll));
  EXPECT_GE(E1.II, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReachCrossValidation,
    ::testing::Combine(::testing::Values<int64_t>(1, 2, 3, 4, 6),
                       ::testing::Values<int64_t>(1, 2, 4, 8),
                       ::testing::Values<int64_t>(1, 2, 3),
                       ::testing::Values<int64_t>(0, 1, 5)));

class IiExactness : public ::testing::TestWithParam<int64_t> {};

TEST_P(IiExactness, StrideOneMatchedBankingGivesIiOne) {
  // unroll == partition with a stride-1 access: each PE owns one bank.
  int64_t U = GetParam();
  KernelSpec K = smallKernel(24, U, U, 1, 0);
  EXPECT_EQ(estimate(K).II, 1.0) << "u=" << U;
}

TEST_P(IiExactness, UnbankedSerializesToUnrollFactor) {
  int64_t U = GetParam();
  KernelSpec K = smallKernel(24, U, 1, 1, 0);
  EXPECT_EQ(estimate(K).II, static_cast<double>(U)) << "u=" << U;
}

INSTANTIATE_TEST_SUITE_P(Sweep, IiExactness,
                         ::testing::Values<int64_t>(1, 2, 3, 4, 6, 8, 12));

//===----------------------------------------------------------------------===//
// Noise hygiene
//===----------------------------------------------------------------------===//

class NoiseHygiene : public ::testing::TestWithParam<int64_t> {};

TEST_P(NoiseHygiene, PredictablePointsAreNoiseFree) {
  int64_t K = GetParam();
  if (512 % K != 0)
    GTEST_SKIP();
  CostModel NoNoise;
  NoNoise.ModelHeuristicNoise = false;
  Estimate With = estimate(gemm512Lockstep(K));
  Estimate Without = estimate(gemm512Lockstep(K), NoNoise);
  EXPECT_EQ(With.Lut, Without.Lut) << "k=" << K;
  EXPECT_EQ(With.Cycles, Without.Cycles) << "k=" << K;
  EXPECT_FALSE(With.Incorrect);
}

TEST_P(NoiseHygiene, ViolatingPointsArePerturbedButBounded) {
  int64_t K = GetParam();
  if (512 % K == 0)
    GTEST_SKIP();
  CostModel NoNoise;
  NoNoise.ModelHeuristicNoise = false;
  CostModel Model;
  Estimate With = estimate(gemm512Lockstep(K));
  Estimate Without = estimate(gemm512Lockstep(K), NoNoise);
  EXPECT_GE(With.Lut, Without.Lut) << "k=" << K;
  EXPECT_LE(static_cast<double>(With.Lut),
            (1.0 + Model.NoiseAmplitudeArea) *
                    static_cast<double>(Without.Lut) +
                1.0)
      << "k=" << K;
  EXPECT_GE(With.Cycles, Without.Cycles);
  EXPECT_LE(With.Cycles,
            (1.0 + Model.NoiseAmplitudeLatency) * Without.Cycles + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, NoiseHygiene,
                         ::testing::Range<int64_t>(1, 17));

//===----------------------------------------------------------------------===//
// Monotonicity of the predictable subset across kernels
//===----------------------------------------------------------------------===//

TEST(HlsimMonotone, GemmBlockedMatchedConfigsScale) {
  double PrevCycles = 1e18;
  for (int64_t U : {1, 2, 4}) {
    GemmBlockedConfig C;
    C.Bank11 = C.Bank12 = C.Bank21 = C.Bank22 = U;
    C.Unroll1 = C.Unroll2 = C.Unroll3 = U;
    Estimate E = estimate(gemmBlockedSpec(C));
    EXPECT_TRUE(E.Predictable) << U;
    EXPECT_LT(E.Cycles, PrevCycles) << U;
    PrevCycles = E.Cycles;
  }
}

TEST(HlsimMonotone, MdKnnMatchedConfigsScale) {
  double PrevCycles = 1e18;
  for (int64_t U : {1, 2, 4}) {
    MdKnnConfig C;
    C.BankPos = C.BankNlPos = C.BankForce = U;
    C.UnrollI = C.UnrollJ = U;
    Estimate E = estimate(mdKnnSpec(C));
    EXPECT_LT(E.Cycles, PrevCycles) << U;
    PrevCycles = E.Cycles;
  }
}

TEST(HlsimMonotone, AreaNeverNegative) {
  for (int64_t U = 1; U <= 16; ++U)
    for (int64_t P : {1, 2, 4, 8}) {
      Estimate E = estimate(gemm512(U, P));
      EXPECT_GT(E.Lut, 0);
      EXPECT_GT(E.Ff, 0);
      EXPECT_GE(E.Bram, 0);
      EXPECT_GE(E.Dsp, 0);
      EXPECT_GT(E.Cycles, 0);
    }
}

} // namespace
