//===- DseTest.cpp - DSE and Spatial model tests ----------------*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "dse/Dse.h"
#include "spatialsim/Spatial.h"

#include <gtest/gtest.h>

using namespace dahlia::dse;
using namespace dahlia::spatialsim;

namespace {

Objectives point(double Lat, double Lut) {
  Objectives O;
  O.Latency = Lat;
  O.Lut = Lut;
  return O;
}

TEST(Dse, DominanceIsStrict) {
  EXPECT_TRUE(dominates(point(1, 1), point(2, 2)));
  EXPECT_TRUE(dominates(point(1, 1), point(1, 2)));
  EXPECT_FALSE(dominates(point(1, 1), point(1, 1))); // equal: no.
  EXPECT_FALSE(dominates(point(1, 3), point(2, 2))); // trade-off: no.
}

TEST(Dse, ParetoFrontSimple) {
  std::vector<Objectives> Pts = {
      point(1, 10), // optimal
      point(2, 5),  // optimal
      point(3, 5),  // dominated by (2,5)
      point(4, 2),  // optimal
      point(4, 3),  // dominated by (4,2)
  };
  std::vector<size_t> Front = paretoFront(Pts);
  EXPECT_EQ(Front, (std::vector<size_t>{0, 1, 3}));
}

TEST(Dse, ParetoFrontAllIncomparable) {
  std::vector<Objectives> Pts;
  for (int I = 0; I != 10; ++I)
    Pts.push_back(point(I, 10 - I));
  EXPECT_EQ(paretoFront(Pts).size(), 10u);
}

TEST(Dse, ParetoFrontSinglePointDominatesAll) {
  std::vector<Objectives> Pts = {point(5, 5), point(1, 1), point(9, 2)};
  std::vector<size_t> Front = paretoFront(Pts);
  EXPECT_EQ(Front, (std::vector<size_t>{1}));
}

TEST(Dse, ParetoNoFrontMemberDominated) {
  // Property: no front member dominates another front member.
  std::vector<Objectives> Pts;
  for (int I = 0; I != 200; ++I) {
    double A = (I * 37) % 101;
    double B = (I * 53) % 97;
    Objectives O = point(A, B);
    O.Bram = (I * 11) % 7;
    Pts.push_back(O);
  }
  std::vector<size_t> Front = paretoFront(Pts);
  for (size_t A : Front)
    for (size_t B : Front)
      if (A != B)
        EXPECT_FALSE(dominates(Pts[A], Pts[B])) << A << " vs " << B;
  // And every non-front point is dominated by some front point.
  std::set<size_t> FrontSet(Front.begin(), Front.end());
  auto Equal = [](const Objectives &A, const Objectives &B) {
    return A.Latency == B.Latency && A.Lut == B.Lut && A.Ff == B.Ff &&
           A.Bram == B.Bram && A.Dsp == B.Dsp;
  };
  for (size_t I = 0; I != Pts.size(); ++I) {
    if (FrontSet.count(I))
      continue;
    bool Covered = false;
    for (size_t F : Front)
      Covered = Covered || dominates(Pts[F], Pts[I]) || Equal(Pts[F], Pts[I]);
    EXPECT_TRUE(Covered) << "point " << I;
  }
}

TEST(Dse, EnumerateConfigsCrossProduct) {
  std::vector<std::vector<int64_t>> Params = {{1, 2}, {10, 20, 30}};
  size_t Count = 0;
  enumerateConfigs(Params, [&](const std::vector<int64_t> &C) {
    ASSERT_EQ(C.size(), 2u);
    ++Count;
  });
  EXPECT_EQ(Count, 6u);
}

TEST(Dse, FractionFormatting) {
  EXPECT_EQ(fractionString(354, 32000), "354/32000 (1.1%)");
}

TEST(Dse, FractionFormattingZeroDenominator) {
  EXPECT_EQ(fractionString(0, 0), "0/0");
}

TEST(Dse, ParetoFrontEmptyInput) {
  EXPECT_TRUE(paretoFront({}).empty());
}

TEST(Dse, ParetoFrontSinglePoint) {
  EXPECT_EQ(paretoFront({point(3, 4)}), (std::vector<size_t>{0}));
}

TEST(Dse, ParetoFrontDuplicatePointsCollapseToLowestIndex) {
  // Exactly equal objective vectors keep one representative: the lowest
  // index, regardless of where the duplicates appear.
  std::vector<Objectives> Pts = {point(2, 2), point(1, 1), point(1, 1),
                                 point(1, 1)};
  EXPECT_EQ(paretoFront(Pts), (std::vector<size_t>{1}));
  std::vector<Objectives> AllSame(5, point(7, 7));
  EXPECT_EQ(paretoFront(AllSame), (std::vector<size_t>{0}));
}

TEST(Dse, ParetoFrontSingleObjectiveTies) {
  // Equal latency is not domination by itself: the tie breaks on the
  // remaining objectives, and exact ties collapse.
  std::vector<Objectives> Pts = {point(1, 5), point(1, 3), point(1, 3),
                                 point(1, 7)};
  EXPECT_EQ(paretoFront(Pts), (std::vector<size_t>{1}));
  // A tie in one objective with a trade-off in another keeps both.
  std::vector<Objectives> Trade = {point(1, 5), point(1, 5)};
  Trade[0].Bram = 1; // (1,5,bram=1) vs (1,5,bram=0): second dominates.
  EXPECT_EQ(paretoFront(Trade), (std::vector<size_t>{1}));
  Trade[0].Bram = 0;
  Trade[0].Dsp = 2;
  Trade[1].Bram = 3; // now incomparable: both survive.
  EXPECT_EQ(paretoFront(Trade), (std::vector<size_t>{0, 1}));
}

TEST(Dse, DominatesEdgeCases) {
  EXPECT_FALSE(dominates(point(1, 1), point(1, 1))); // irreflexive
  Objectives A = point(1, 2), B = point(1, 2);
  A.Dsp = 1;
  EXPECT_TRUE(dominates(B, A));  // better only in DSP
  EXPECT_FALSE(dominates(A, B));
  EXPECT_TRUE(equalObjectives(point(2, 3), point(2, 3)));
  EXPECT_FALSE(equalObjectives(A, B));
}

//===----------------------------------------------------------------------===//
// Spatial banking inference (Figure 9 / 13)
//===----------------------------------------------------------------------===//

TEST(Spatial, DividingFactorsGetExactBanking) {
  for (int64_t U : {1, 2, 4, 8, 16}) {
    BankingDecision D = inferBanking(128, U);
    EXPECT_EQ(D.BankA, U) << U;
    EXPECT_EQ(D.BankB, U) << U;
  }
}

TEST(Spatial, NonDividingFactorsDiverge) {
  // Fig. 13a: for unrolling factors that do not divide the memory size
  // Spatial infers banking different from the unrolling factor.
  for (int64_t U : {3, 5, 6, 7, 9, 11}) {
    BankingDecision D = inferBanking(128, U);
    EXPECT_TRUE(D.BankA != U || D.BankB != U) << U;
    EXPECT_EQ(128 % D.BankA, 0) << U;
    EXPECT_EQ(128 % D.BankB, 0) << U;
  }
}

TEST(Spatial, MismatchRaisesResourceUsage) {
  // Fig. 13e: designs use significantly fewer LUTs when the unrolling
  // factor divides the memory size.
  auto E8 = estimateSpatialGemm(128, 8);
  auto E9 = estimateSpatialGemm(128, 9);
  EXPECT_GT(E9.Lut, E8.Lut);
  EXPECT_TRUE(E8.Predictable);
  EXPECT_FALSE(E9.Predictable);
}

TEST(Spatial, DahliaUsesFewerLutsOnMismatchNeighborhood) {
  // The equivalent Dahlia designs avoid the indirection blow-up.
  auto Spatial9 = estimateSpatialGemm(128, 9);
  auto Dahlia8 = estimateDahliaGemm(128, 8);
  EXPECT_GT(Spatial9.Lut, Dahlia8.Lut);
}

} // namespace
