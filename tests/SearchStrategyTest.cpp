//===- SearchStrategyTest.cpp - Pruned + sharded search tests ---*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
// The strategy contract: every search strategy — successive halving,
// dominance pruning, and any shard split of either — produces EXACTLY the
// Pareto-front membership of the exhaustive sweep. The enabling property
// is the estimator fidelity ladder (each fidelity is a component-wise
// lower bound of the next), which this file pins directly.
//
//===----------------------------------------------------------------------===//

#include "dse/SearchStrategy.h"

#include "kernels/Kernels.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

using namespace dahlia;
using namespace dahlia::dse;
using namespace dahlia::kernels;

namespace {

/// The Bank21 = Bank22 = 1 slice of the Figure 7 space: 2,000 configs, 11
/// accepted (the analytic count pinned in RegressionAnchorsTest).
std::shared_ptr<std::vector<GemmBlockedConfig>> sliceSpace() {
  auto Space = std::make_shared<std::vector<GemmBlockedConfig>>();
  for (const GemmBlockedConfig &C : gemmBlockedSpace())
    if (C.Bank21 == 1 && C.Bank22 == 1)
      Space->push_back(C);
  return Space;
}

DseProblem sliceProblem(
    const std::shared_ptr<std::vector<GemmBlockedConfig>> &Space) {
  DseProblem P;
  P.Size = Space->size();
  P.Source = [Space](size_t I) { return gemmBlockedDahlia((*Space)[I]); };
  P.Spec = [Space](size_t I) { return gemmBlockedSpec((*Space)[I]); };
  return P;
}

DseResult runStrategy(const DseProblem &P, StrategyKind K,
                      unsigned Threads = 2,
                      std::shared_ptr<DseCache> Cache = nullptr,
                      ShardSpec Shard = ShardSpec()) {
  DseOptions O;
  O.Strategy = K;
  O.Threads = Threads;
  O.Cache = std::move(Cache);
  O.Shard = Shard;
  return DseEngine(O).explore(P);
}

//===----------------------------------------------------------------------===//
// Parsing and partitioning
//===----------------------------------------------------------------------===//

TEST(SearchStrategyParse, StrategyNames) {
  EXPECT_EQ(parseStrategy("exhaustive"), StrategyKind::Exhaustive);
  EXPECT_EQ(parseStrategy(""), StrategyKind::Exhaustive);
  EXPECT_EQ(parseStrategy("halving"), StrategyKind::Halving);
  EXPECT_EQ(parseStrategy("successive-halving"), StrategyKind::Halving);
  EXPECT_EQ(parseStrategy("pareto-prune"), StrategyKind::ParetoPrune);
  EXPECT_EQ(parseStrategy("prune"), StrategyKind::ParetoPrune);
  EXPECT_FALSE(parseStrategy("bayesian").has_value());
  for (StrategyKind K : {StrategyKind::Exhaustive, StrategyKind::Halving,
                         StrategyKind::ParetoPrune})
    EXPECT_EQ(parseStrategy(strategyName(K)), K);
}

TEST(SearchStrategyParse, ShardSpecs) {
  std::optional<ShardSpec> S = parseShard("1/3");
  ASSERT_TRUE(S);
  EXPECT_EQ(S->Index, 1u);
  EXPECT_EQ(S->Count, 3u);
  EXPECT_FALSE(parseShard("3/3"));
  EXPECT_FALSE(parseShard("-1/3"));
  EXPECT_FALSE(parseShard("0/0"));
  EXPECT_FALSE(parseShard("1"));
  EXPECT_FALSE(parseShard("a/b"));
  EXPECT_FALSE(parseShard("1/3x"));
}

TEST(SearchStrategyParse, ShardPartitionCoversSpaceOnce) {
  // Every index lands in exactly one shard, the split is deterministic,
  // and no shard is starved on a space of a few thousand configs.
  ShardSpec S0{0, 3}, S1{1, 3}, S2{2, 3};
  size_t Counts[3] = {0, 0, 0};
  for (size_t I = 0; I != 2000; ++I) {
    unsigned Owner = S0.shardOf(I);
    EXPECT_EQ(Owner, S1.shardOf(I));
    EXPECT_EQ(Owner, S2.shardOf(I));
    ASSERT_LT(Owner, 3u);
    ++Counts[Owner];
  }
  for (size_t C : Counts)
    EXPECT_GT(C, 400u);
}

//===----------------------------------------------------------------------===//
// The fidelity ladder (the foundation of the exactness guarantee)
//===----------------------------------------------------------------------===//

TEST(FidelityLadder, BoundsAreMonotoneAcrossGemmSpace) {
  // Coarse <= Medium <= Full in every minimized objective, for accepted
  // and rule-violating configurations alike. Stride through the full
  // 32,000-config space.
  std::vector<GemmBlockedConfig> Space = gemmBlockedSpace();
  size_t Checked = 0;
  for (size_t I = 0; I < Space.size(); I += 37) {
    hlsim::KernelSpec K = gemmBlockedSpec(Space[I]);
    Objectives C = Objectives::of(hlsim::estimateAt(K, hlsim::Fidelity::Coarse));
    Objectives M = Objectives::of(hlsim::estimateAt(K, hlsim::Fidelity::Medium));
    Objectives F = Objectives::of(hlsim::estimateAt(K, hlsim::Fidelity::Full));
    auto LE = [](const Objectives &A, const Objectives &B) {
      return A.Latency <= B.Latency && A.Lut <= B.Lut && A.Ff <= B.Ff &&
             A.Bram <= B.Bram && A.Dsp <= B.Dsp;
    };
    EXPECT_TRUE(LE(C, M)) << "config " << I;
    EXPECT_TRUE(LE(M, F)) << "config " << I;
    ++Checked;
  }
  EXPECT_GT(Checked, 800u);
}

TEST(FidelityLadder, FullFidelityIsTheDefaultModel) {
  // Fidelity::Full must reproduce the default CostModel bit-for-bit —
  // otherwise every memoized estimate in the system would silently
  // diverge from hlsim::estimate().
  hlsim::KernelSpec K = gemmBlockedSpec(GemmBlockedConfig{2, 4, 1, 3, 2, 4, 6});
  hlsim::Estimate A = hlsim::estimate(K);
  hlsim::Estimate B = hlsim::estimateAt(K, hlsim::Fidelity::Full);
  EXPECT_TRUE(equalObjectives(Objectives::of(A), Objectives::of(B)));
  EXPECT_EQ(A.LutMem, B.LutMem);
  EXPECT_EQ(A.Incorrect, B.Incorrect);
  EXPECT_EQ(A.Predictable, B.Predictable);
}

TEST(FidelityLadder, CacheKeysSeparateRungs) {
  // The fix this PR ships: estimate cache keys carry the fidelity, so a
  // coarse rung can never serve a stale bound to a full-fidelity lookup.
  uint64_t H = 0x1234abcd5678ef00ULL;
  uint64_t KC = hlsim::fidelityCacheKey(H, hlsim::Fidelity::Coarse);
  uint64_t KM = hlsim::fidelityCacheKey(H, hlsim::Fidelity::Medium);
  uint64_t KF = hlsim::fidelityCacheKey(H, hlsim::Fidelity::Full);
  EXPECT_NE(KC, KM);
  EXPECT_NE(KM, KF);
  EXPECT_NE(KC, KF);
  // And none collide with the raw (pre-fidelity) key of the same spec.
  EXPECT_NE(KC, H);
  EXPECT_NE(KM, H);
  EXPECT_NE(KF, H);

  // End to end: a coarse entry in the shared cache is invisible at Full.
  DseCache Cache;
  hlsim::Estimate Bogus;
  Bogus.Lut = -12345;
  Cache.insertEstimate(KC, Bogus);
  hlsim::Estimate Out;
  EXPECT_FALSE(Cache.lookupEstimate(KF, Out));
  EXPECT_TRUE(Cache.lookupEstimate(KC, Out));
  EXPECT_EQ(Out.Lut, -12345);
}

TEST(FidelityLadder, WarmCacheCrossRungRunStaysExact) {
  // A pruned run fills the shared cache with coarse/medium bounds; a
  // subsequent exhaustive run over the same cache must not be poisoned by
  // them — every full-fidelity objective must equal a fresh run's.
  auto Space = sliceSpace();
  DseProblem P = sliceProblem(Space);
  DseResult Fresh = runStrategy(P, StrategyKind::Exhaustive, 1);

  auto Cache = std::make_shared<DseCache>();
  DseResult Pruned = runStrategy(P, StrategyKind::Halving, 2, Cache);
  EXPECT_GT(Cache->estimateCount(), 0u);
  DseResult Warm = runStrategy(P, StrategyKind::Exhaustive, 2, Cache);

  EXPECT_EQ(Warm.Front, Fresh.Front);
  EXPECT_EQ(Warm.AcceptedFront, Fresh.AcceptedFront);
  ASSERT_EQ(Warm.Points.size(), Fresh.Points.size());
  for (size_t I = 0; I != Warm.Points.size(); ++I) {
    ASSERT_EQ(Warm.Points[I].Estimated, Fresh.Points[I].Estimated) << I;
    EXPECT_TRUE(equalObjectives(Warm.Points[I].Obj, Fresh.Points[I].Obj))
        << "config " << I << " served a stale cross-rung estimate";
  }
  // The pruned run's own full-fidelity entries DO serve the warm run.
  EXPECT_GT(Warm.Stats.EstimateCacheHits, 0u);
  (void)Pruned;
}

//===----------------------------------------------------------------------===//
// Strategy exactness
//===----------------------------------------------------------------------===//

TEST(SearchStrategy, HalvingNeverDropsATrueParetoMember) {
  auto Space = sliceSpace();
  DseProblem P = sliceProblem(Space);
  DseResult Ex = runStrategy(P, StrategyKind::Exhaustive);
  DseResult Ha = runStrategy(P, StrategyKind::Halving);

  EXPECT_EQ(Ha.Front, Ex.Front);
  EXPECT_EQ(Ha.AcceptedFront, Ex.AcceptedFront);
  EXPECT_EQ(Ha.Stats.Accepted, Ex.Stats.Accepted);
  // Every front member carries genuine full-fidelity objectives.
  for (size_t I : Ha.Front) {
    ASSERT_TRUE(Ha.Points[I].Estimated);
    EXPECT_TRUE(equalObjectives(Ha.Points[I].Obj, Ex.Points[I].Obj)) << I;
  }
  // And it earned that front cheaply: well under the 40% acceptance bound.
  EXPECT_LT(Ha.Stats.Estimated, Ex.Stats.Estimated * 2 / 5);
  EXPECT_EQ(Ha.Stats.Estimated + Ha.Stats.Pruned, Ex.Stats.Estimated);
  EXPECT_GT(Ha.Stats.Pruned, 0u);
}

TEST(SearchStrategy, DominancePruningIsExact) {
  auto Space = sliceSpace();
  DseProblem P = sliceProblem(Space);
  DseResult Ex = runStrategy(P, StrategyKind::Exhaustive);
  DseResult Pr = runStrategy(P, StrategyKind::ParetoPrune);

  EXPECT_EQ(Pr.Front, Ex.Front);
  EXPECT_EQ(Pr.AcceptedFront, Ex.AcceptedFront);
  EXPECT_EQ(Pr.Stats.Accepted, Ex.Stats.Accepted);
  // Exactness accounting: every candidate was either fully estimated or
  // provably dominated — nothing fell through.
  EXPECT_EQ(Pr.Stats.Estimated + Pr.Stats.Pruned, Ex.Stats.Estimated);
  EXPECT_GT(Pr.Stats.Pruned, 0u);
  EXPECT_LT(Pr.Stats.Estimated, Ex.Stats.Estimated / 2);
  EXPECT_EQ(Pr.Stats.Rescued, 0u); // halving-only counter
}

TEST(SearchStrategy, PrunedStrategiesAreThreadCountInvariant) {
  auto Space = sliceSpace();
  DseProblem P = sliceProblem(Space);
  for (StrategyKind K : {StrategyKind::Halving, StrategyKind::ParetoPrune}) {
    DseResult Ref = runStrategy(P, K, 1);
    for (unsigned Threads : {2u, 4u}) {
      DseResult R = runStrategy(P, K, Threads);
      EXPECT_EQ(R.Front, Ref.Front) << strategyName(K) << "@" << Threads;
      EXPECT_EQ(R.AcceptedFront, Ref.AcceptedFront)
          << strategyName(K) << "@" << Threads;
      EXPECT_EQ(R.Stats.Estimated, Ref.Stats.Estimated)
          << strategyName(K) << "@" << Threads;
      EXPECT_EQ(R.Stats.Pruned, Ref.Stats.Pruned)
          << strategyName(K) << "@" << Threads;
    }
  }
}

TEST(SearchStrategy, CheckerDirectedSpacesPruneOnlyAcceptedPoints) {
  // EstimateRejected = false (the Figure 8 methodology): rejected configs
  // are never estimated at any fidelity, and the pruned front still
  // matches the exhaustive one.
  auto Space = sliceSpace();
  DseProblem P = sliceProblem(Space);
  P.EstimateRejected = false;
  DseResult Ex = runStrategy(P, StrategyKind::Exhaustive);
  DseResult Pr = runStrategy(P, StrategyKind::ParetoPrune);
  EXPECT_EQ(Pr.Front, Ex.Front);
  EXPECT_EQ(Pr.AcceptedFront, Ex.AcceptedFront);
  EXPECT_EQ(Pr.Front, Pr.AcceptedFront);
  EXPECT_LE(Pr.Stats.Estimated + Pr.Stats.Pruned, Pr.Stats.Accepted);
  for (size_t I = 0; I != Pr.Points.size(); ++I)
    if (!Pr.Points[I].Accepted)
      EXPECT_FALSE(Pr.Points[I].Estimated) << I;
}

//===----------------------------------------------------------------------===//
// Shard splits and the merge
//===----------------------------------------------------------------------===//

TEST(ShardMerge, ThreeShardsReproduceTheWholeFrontAtAnyThreadCount) {
  auto Space = sliceSpace();
  DseProblem P = sliceProblem(Space);
  DseResult Whole = runStrategy(P, StrategyKind::Exhaustive, 2);
  auto WholeObj = [&](size_t I) -> const Objectives & {
    return Whole.Points[I].Obj;
  };
  uint64_t WholeHash = frontHash(Whole.Front, WholeObj);

  for (unsigned Threads : {1u, 2u, 4u}) {
    std::vector<FrontPoint> Points;
    size_t Explored = 0;
    for (unsigned S = 0; S != 3; ++S) {
      DseResult Part = runStrategy(P, StrategyKind::Exhaustive, Threads,
                                   nullptr, ShardSpec{S, 3});
      Explored += Part.Stats.Explored;
      std::vector<FrontPoint> FP = collectFrontPoints(Part);
      Points.insert(Points.end(), FP.begin(), FP.end());
    }
    EXPECT_EQ(Explored, P.Size) << "shards must cover the space exactly";

    MergedFronts M = mergeFrontPoints(Points);
    EXPECT_EQ(M.Front, Whole.Front) << Threads << " threads/shard";
    EXPECT_EQ(M.AcceptedFront, Whole.AcceptedFront)
        << Threads << " threads/shard";

    std::map<size_t, Objectives> ObjByIndex;
    for (const FrontPoint &FP : Points)
      ObjByIndex[FP.Index] = FP.Obj;
    auto MergedObj = [&](size_t I) -> const Objectives & {
      return ObjByIndex.at(I);
    };
    EXPECT_EQ(frontHash(M.Front, MergedObj), WholeHash)
        << Threads << " threads/shard";
  }
}

TEST(ShardMerge, PrunedShardsMergeToTheExactFrontToo) {
  // Strategy and sharding compose: halving inside each shard still yields
  // the exact whole-space front after the merge.
  auto Space = sliceSpace();
  DseProblem P = sliceProblem(Space);
  DseResult Whole = runStrategy(P, StrategyKind::Exhaustive, 2);

  std::vector<FrontPoint> Points;
  size_t FullEstimates = 0;
  for (unsigned S = 0; S != 3; ++S) {
    DseResult Part = runStrategy(P, StrategyKind::Halving, 2, nullptr,
                                 ShardSpec{S, 3});
    FullEstimates += Part.Stats.Estimated;
    std::vector<FrontPoint> FP = collectFrontPoints(Part);
    Points.insert(Points.end(), FP.begin(), FP.end());
  }
  MergedFronts M = mergeFrontPoints(Points);
  EXPECT_EQ(M.Front, Whole.Front);
  EXPECT_EQ(M.AcceptedFront, Whole.AcceptedFront);
  EXPECT_LT(FullEstimates, Whole.Stats.Estimated);
}

TEST(ShardMerge, FrontPointsRoundTripThroughJsonBitExactly) {
  auto Space = sliceSpace();
  DseProblem P = sliceProblem(Space);
  DseResult R = runStrategy(P, StrategyKind::Exhaustive, 2);
  std::vector<FrontPoint> Points = collectFrontPoints(R);
  ASSERT_FALSE(Points.empty());

  // Serialize, reparse from the dumped text, and compare bit-for-bit —
  // this is the property the multi-process merge relies on.
  std::string Dumped = frontPointsToJson(Points).dump();
  std::optional<Json> Parsed = Json::parse(Dumped);
  ASSERT_TRUE(Parsed);
  std::string Err;
  std::optional<std::vector<FrontPoint>> Back =
      frontPointsFromJson(*Parsed, &Err);
  ASSERT_TRUE(Back) << Err;
  ASSERT_EQ(Back->size(), Points.size());
  for (size_t K = 0; K != Points.size(); ++K) {
    EXPECT_EQ((*Back)[K].Index, Points[K].Index);
    EXPECT_EQ((*Back)[K].Accepted, Points[K].Accepted);
    EXPECT_TRUE(equalObjectives((*Back)[K].Obj, Points[K].Obj))
        << "objectives changed across the JSON round-trip at " << K;
  }

  MergedFronts M = mergeFrontPoints(*Back);
  EXPECT_EQ(M.Front, R.Front);
  EXPECT_EQ(M.AcceptedFront, R.AcceptedFront);
}

TEST(ShardMerge, MalformedFrontPointsAreRejectedNotDefaulted) {
  // A point missing an objective must fail the parse — defaulting it to
  // 0 would make it dominate (and erase) the entire merged front.
  auto Parse = [](const std::string &Text) {
    std::optional<Json> J = Json::parse(Text);
    EXPECT_TRUE(J);
    std::string Err;
    auto R = frontPointsFromJson(*J, &Err);
    return std::make_pair(R.has_value(), Err);
  };
  EXPECT_TRUE(Parse(R"([{"index":1,"accepted":true,"latency":2,"lut":3,)"
                    R"("ff":4,"bram":5,"dsp":6}])")
                  .first);
  auto [OkMissing, ErrMissing] = Parse(
      R"([{"index":1,"accepted":true,"latency":2,"lut":3,"ff":4,"bram":5}])");
  EXPECT_FALSE(OkMissing);
  EXPECT_NE(ErrMissing.find("dsp"), std::string::npos);
  EXPECT_FALSE(Parse(R"([{"index":1,"latency":2,"lut":3,"ff":4,"bram":5,)"
                     R"("dsp":6}])")
                   .first); // no verdict
  EXPECT_FALSE(Parse(R"([{"index":1,"accepted":true,"latency":"fast",)"
                     R"("lut":3,"ff":4,"bram":5,"dsp":6}])")
                   .first); // non-numeric objective
  EXPECT_FALSE(Parse(R"([42])").first);
  EXPECT_FALSE(Parse(R"({"index":1})").first); // not an array
}

} // namespace
