//===- SpecValidationTest.cpp - extractKernelSpec vs. hand specs -*- C++ -*-=//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
// Table-driven validation of driver::extractKernelSpec against the
// hand-written kernel specs in src/kernels/: for every benchmark whose
// Dahlia port ships next to a spec (the four generator kernels and the 16
// MachSuite ports), extraction from the type-checked port must recover the
// structural facts the hand spec records — interface arrays with their
// shapes, banking, and element widths; the modelled loop nest; the
// floating-point and accumulator flags; and, where the port is written
// op-for-op against the spec, the arithmetic op counts.
//
// Extraction records *every* loop nest (multi-phase kernels like md-knn
// validate both the hoisted gather and the force nest) and recovers a
// static trip-count bound for counted `while` loops (kmp's stream walk is
// a modelled nest now). Divergences extraction cannot close are encoded
// per-entry and documented here rather than silently skipped:
//   * sort-merge / sort-radix hand specs flatten the pass loop into one
//     serial trip count, so only the iteration product is comparable;
//   * several hand specs count abstract kernel ops (e.g. aes's 4 adds per
//     round) that the simplified port does not spell out one-for-one.
//
//===----------------------------------------------------------------------===//

#include "driver/CompilerPipeline.h"
#include "driver/SpecExtractor.h"
#include "kernels/Kernels.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

using namespace dahlia;
using namespace dahlia::driver;
using namespace dahlia::kernels;

namespace {

/// Which facts of the hand spec the port states exactly.
struct Expectation {
  bool CompareLoops = true;      ///< Exact trip/unroll sequence.
  bool CompareTotalIters = false; ///< Only the product (flattened nests).
  bool CompareOps = false;       ///< MulOps/AddOps equality.
  const char *Note = "";
};

/// Runs the port through the pipeline, extracts a spec, and compares it
/// against \p Expected under \p E.
void validate(const std::string &Name, const std::string &Source,
              const hlsim::KernelSpec &Expected, const Expectation &E) {
  SCOPED_TRACE(Name + (E.Note[0] ? std::string(" (") + E.Note + ")" : ""));

  CompileResult R = CompilerPipeline().check(Source);
  ASSERT_TRUE(R.ok()) << R.firstError();
  Result<hlsim::KernelSpec> ExtractedOr = extractKernelSpec(*R.Prog, Name);
  ASSERT_TRUE(bool(ExtractedOr)) << ExtractedOr.error().str();
  const hlsim::KernelSpec &Got = *ExtractedOr;

  // Every array of the hand spec must be declared by the port with the
  // same shape, banking, and element width. (The port may declare extra
  // working memories the spec folds into other costs, e.g. md-knn's
  // staging buffer.)
  for (const hlsim::ArraySpec &A : Expected.Arrays) {
    const hlsim::ArraySpec *G = Got.findArray(A.Name);
    ASSERT_NE(G, nullptr) << "port does not declare array '" << A.Name << "'";
    EXPECT_EQ(G->DimSizes, A.DimSizes) << A.Name;
    EXPECT_EQ(G->Partition, A.Partition) << A.Name;
    EXPECT_EQ(G->ElemBits, A.ElemBits) << A.Name;
  }

  if (E.CompareLoops) {
    // Every nest, in source order: trip/unroll sequence plus the
    // while-bound marker.
    ASSERT_EQ(Got.nestCount(), Expected.nestCount());
    for (size_t N = 0; N != Expected.nestCount(); ++N) {
      const auto GotN = Got.nest(N);
      const auto ExpN = Expected.nest(N);
      ASSERT_EQ(GotN.Loops->size(), ExpN.Loops->size()) << "nest " << N;
      for (size_t I = 0; I != ExpN.Loops->size(); ++I) {
        EXPECT_EQ((*GotN.Loops)[I].Trip, (*ExpN.Loops)[I].Trip)
            << "nest " << N << " loop " << I;
        EXPECT_EQ((*GotN.Loops)[I].Unroll, (*ExpN.Loops)[I].Unroll)
            << "nest " << N << " loop " << I;
        EXPECT_EQ((*GotN.Loops)[I].IsWhile, (*ExpN.Loops)[I].IsWhile)
            << "nest " << N << " loop " << I;
      }
    }
  } else if (E.CompareTotalIters) {
    EXPECT_EQ(Got.totalIters(), Expected.totalIters());
    EXPECT_EQ(Got.totalUnroll(), Expected.totalUnroll());
  }

  EXPECT_EQ(Got.FloatingPoint, Expected.FloatingPoint);
  EXPECT_EQ(Got.anyAccumulator(), Expected.anyAccumulator());

  if (E.CompareOps) {
    EXPECT_EQ(Got.MulOps, Expected.MulOps);
    EXPECT_EQ(Got.AddOps, Expected.AddOps);
  }
}

//===----------------------------------------------------------------------===//
// Generator kernels (the DSE sweep spaces)
//===----------------------------------------------------------------------===//

TEST(SpecValidation, GemmBlockedDefaultAndBanked) {
  Expectation E;
  E.CompareOps = true; // The port is written op-for-op against the spec.
  validate("gemm-blocked", gemmBlockedDahlia(GemmBlockedConfig()),
           gemmBlockedSpec(GemmBlockedConfig()), E);

  // An accepted non-trivial configuration (B = U on every coupled pair).
  GemmBlockedConfig C;
  C.Bank11 = C.Bank12 = C.Bank21 = C.Bank22 = 2;
  C.Unroll1 = C.Unroll2 = C.Unroll3 = 2;
  ASSERT_TRUE(checksSource(gemmBlockedDahlia(C)));
  validate("gemm-blocked-b2u2", gemmBlockedDahlia(C), gemmBlockedSpec(C), E);
}

TEST(SpecValidation, Stencil2d) {
  Expectation E;
  E.Note = "hand spec counts the two-level combine reduction as one add";
  validate("stencil2d", stencil2dDahlia(Stencil2dConfig()),
           stencil2dSpec(Stencil2dConfig()), E);
}

TEST(SpecValidation, MdKnnDefault) {
  Expectation E;
  E.Note = "both phases modelled: the hoisted gather nest and the force "
           "nest validate structurally";
  validate("md-knn", mdKnnDahlia(MdKnnConfig()), mdKnnSpec(MdKnnConfig()), E);
}

TEST(SpecValidation, MdKnnBankedAndUnrolled) {
  // An accepted non-trivial configuration: the force nest's unroll and
  // the coupled bankings must survive extraction unchanged while the
  // gather nest stays serial.
  MdKnnConfig C;
  C.UnrollI = 2;
  C.BankPos = C.BankNlPos = C.BankForce = 2;
  ASSERT_TRUE(checksSource(mdKnnDahlia(C)));
  Expectation E;
  validate("md-knn-b2u2", mdKnnDahlia(C), mdKnnSpec(C), E);
}

TEST(SpecValidation, MdGridDefault) {
  Expectation E;
  validate("md-grid", mdGridDahlia(MdGridConfig()), mdGridSpec(MdGridConfig()),
           E);
}

//===----------------------------------------------------------------------===//
// MachSuite ports (Figure 11)
//===----------------------------------------------------------------------===//

TEST(SpecValidation, MachSuitePortsMatchHandSpecs) {
  std::map<std::string, Expectation> Table;
  Table["aes"] = {true, false, false,
                  "spec counts abstract round adds the port elides"};
  Table["bfs-bulk"] = {true, false, false, ""};
  Table["bfs-queue"] = {true, false, false, ""};
  Table["fft-strided"] = {true, false, false,
                          "spec counts butterfly adds beyond the port's"};
  Table["gemm-blocked"] = {true, false, true, ""};
  Table["gemm-ncubed"] = {true, false, true, ""};
  Table["kmp"] = {true, false, false,
                  "counted while loop modelled with its static bound"};
  Table["md-grid"] = {true, false, false, ""};
  Table["md-knn"] = {true, false, false, ""};
  Table["nw"] = {true, false, false, ""};
  Table["sort-merge"] = {false, true, false, "pass loop flattened in spec"};
  Table["sort-radix"] = {false, true, false, "pass loop flattened in spec"};
  Table["spmv-crs"] = {true, false, true, ""};
  Table["spmv-ellpack"] = {true, false, true, ""};
  Table["stencil-stencil2d"] = {true, false, false, ""};
  Table["stencil-stencil3d"] = {true, false, false, ""};

  size_t Validated = 0;
  for (const MachSuiteBenchmark &B : machSuiteBenchmarks()) {
    auto It = Table.find(B.Name);
    ASSERT_NE(It, Table.end()) << "no expectation row for " << B.Name;
    // The Rewrite spec describes the Dahlia port (the Baseline describes
    // the reference HLS implementation, same structure by construction).
    validate(B.Name, B.DahliaSource, B.Rewrite, It->second);
    ++Validated;
  }
  EXPECT_EQ(Validated, 16u);
}

//===----------------------------------------------------------------------===//
// The extractor facts the comparisons above rely on
//===----------------------------------------------------------------------===//

TEST(SpecValidation, KmpWhileNestHasStaticBound) {
  // Pin the while-bound derivation: the kmp port's counted `while`
  // (`let i = 0; while (i < 32411) { ... i := i + 1; }`) is a modelled
  // serial nest with the static trip bound, flagged as a while loop.
  for (const MachSuiteBenchmark &B : machSuiteBenchmarks()) {
    if (B.Name != "kmp")
      continue;
    CompileResult R = CompilerPipeline().check(B.DahliaSource);
    ASSERT_TRUE(R.ok()) << R.firstError();
    Result<hlsim::KernelSpec> Spec = extractKernelSpec(*R.Prog);
    ASSERT_TRUE(bool(Spec));
    ASSERT_EQ(Spec->Loops.size(), 1u);
    EXPECT_EQ(Spec->Loops[0].Trip, 32411);
    EXPECT_EQ(Spec->Loops[0].Unroll, 1);
    EXPECT_TRUE(Spec->Loops[0].IsWhile);
    EXPECT_TRUE(Spec->ExtraNests.empty());
    EXPECT_EQ(Spec->totalIters(), B.Rewrite.totalIters());
  }
}

TEST(SpecValidation, GuardedIncrementHasNoStaticBound) {
  // An increment hidden behind an `if` with no else executes
  // data-dependently — deriving a bound from it would make the "Exact"
  // simulator rung silently wrong on a potentially unbounded loop.
  const char *Src = "decl A: bit<32>[16];\n"
                    "let i = 0;\n"
                    "while (i < 16) {\n"
                    "  let v = A[i]\n"
                    "  ---\n"
                    "  if (v == 0) { i := i + 1; }\n"
                    "}\n";
  CompileResult R = CompilerPipeline().check(Src);
  ASSERT_TRUE(R.ok()) << R.firstError();
  Result<hlsim::KernelSpec> Spec = extractKernelSpec(*R.Prog);
  ASSERT_TRUE(bool(Spec));
  EXPECT_TRUE(Spec->Loops.empty());
}

TEST(SpecValidation, SequentialWhilesTrackTheCounterValue) {
  // The first while consumes i = 0..9; the second starts at the first
  // one's exit value (10), not at the stale `let` init — 10 trips each,
  // as two serial nests.
  const char *Src = "decl A: bit<32>[32];\n"
                    "let i = 0;\n"
                    "{\n"
                    "while (i < 10) {\n"
                    "  let v = A[i]\n"
                    "  ---\n"
                    "  i := i + 1;\n"
                    "}\n"
                    "---\n"
                    "while (i < 20) {\n"
                    "  let w = A[i]\n"
                    "  ---\n"
                    "  i := i + 1;\n"
                    "}\n"
                    "}\n";
  CompileResult R = CompilerPipeline().check(Src);
  ASSERT_TRUE(R.ok()) << R.firstError();
  Result<hlsim::KernelSpec> Spec = extractKernelSpec(*R.Prog);
  ASSERT_TRUE(bool(Spec));
  ASSERT_EQ(Spec->Loops.size(), 1u);
  EXPECT_EQ(Spec->Loops[0].Trip, 10);
  ASSERT_EQ(Spec->ExtraNests.size(), 1u);
  ASSERT_EQ(Spec->ExtraNests[0].Loops.size(), 1u);
  EXPECT_EQ(Spec->ExtraNests[0].Loops[0].Trip, 10);
}

TEST(SpecValidation, DoubleIncrementHasNoStaticBound) {
  // Two increments per iteration step the counter twice: deriving a
  // bound from either one would double-count the trips.
  const char *Src = "decl A: bit<32>[16];\n"
                    "let i = 0;\n"
                    "while (i < 10) {\n"
                    "  let v = A[i]\n"
                    "  ---\n"
                    "  i := i + 1;\n"
                    "  ---\n"
                    "  i := i + 1;\n"
                    "}\n";
  CompileResult R = CompilerPipeline().check(Src);
  ASSERT_TRUE(R.ok()) << R.firstError();
  Result<hlsim::KernelSpec> Spec = extractKernelSpec(*R.Prog);
  ASSERT_TRUE(bool(Spec));
  EXPECT_TRUE(Spec->Loops.empty());
}

TEST(SpecValidation, ReassignedCounterLosesItsBound) {
  // A write between the `let` and the while invalidates the tracked
  // init, so no (wrong) bound is derived.
  const char *Src = "decl A: bit<32>[16];\n"
                    "let i = 0;\n"
                    "let x = A[0]\n"
                    "---\n"
                    "i := x;\n"
                    "---\n"
                    "while (i < 16) {\n"
                    "  let v = A[i]\n"
                    "  ---\n"
                    "  i := i + 1;\n"
                    "}\n";
  CompileResult R = CompilerPipeline().check(Src);
  ASSERT_TRUE(R.ok()) << R.firstError();
  Result<hlsim::KernelSpec> Spec = extractKernelSpec(*R.Prog);
  ASSERT_TRUE(bool(Spec));
  EXPECT_TRUE(Spec->Loops.empty());
}

TEST(SpecValidation, DataDependentWhileStaysUnmodelled) {
  // A while whose counter is rewritten data-dependently has no static
  // bound: its accesses still count, but it contributes no nest level.
  const char *Src = "decl A: bit<32>[16];\n"
                    "let i = 0;\n"
                    "while (i < 16) {\n"
                    "  let v = A[i]\n"
                    "  ---\n"
                    "  if (v == 0) { i := i + 1; } else { i := 0; }\n"
                    "}\n";
  CompileResult R = CompilerPipeline().check(Src);
  ASSERT_TRUE(R.ok()) << R.firstError();
  Result<hlsim::KernelSpec> Spec = extractKernelSpec(*R.Prog);
  ASSERT_TRUE(bool(Spec));
  EXPECT_TRUE(Spec->Loops.empty());
}

} // namespace
