//===- SpecValidationTest.cpp - extractKernelSpec vs. hand specs -*- C++ -*-=//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
// Table-driven validation of driver::extractKernelSpec against the
// hand-written kernel specs in src/kernels/: for every benchmark whose
// Dahlia port ships next to a spec (the four generator kernels and the 16
// MachSuite ports), extraction from the type-checked port must recover the
// structural facts the hand spec records — interface arrays with their
// shapes, banking, and element widths; the modelled loop nest; the
// floating-point and accumulator flags; and, where the port is written
// op-for-op against the spec, the arithmetic op counts.
//
// Divergences extraction cannot close are encoded per-entry and documented
// here rather than silently skipped:
//   * kmp walks its input with a data-dependent `while`, which the
//     extractor does not model as a nest (no static trip count);
//   * sort-merge / sort-radix hand specs flatten the pass loop into one
//     serial trip count, so only the iteration product is comparable;
//   * several hand specs count abstract kernel ops (e.g. aes's 4 adds per
//     round) that the simplified port does not spell out one-for-one.
//
//===----------------------------------------------------------------------===//

#include "driver/CompilerPipeline.h"
#include "driver/SpecExtractor.h"
#include "kernels/Kernels.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

using namespace dahlia;
using namespace dahlia::driver;
using namespace dahlia::kernels;

namespace {

/// Which facts of the hand spec the port states exactly.
struct Expectation {
  bool CompareLoops = true;      ///< Exact trip/unroll sequence.
  bool CompareTotalIters = false; ///< Only the product (flattened nests).
  bool CompareOps = false;       ///< MulOps/AddOps equality.
  const char *Note = "";
};

/// Runs the port through the pipeline, extracts a spec, and compares it
/// against \p Expected under \p E.
void validate(const std::string &Name, const std::string &Source,
              const hlsim::KernelSpec &Expected, const Expectation &E) {
  SCOPED_TRACE(Name + (E.Note[0] ? std::string(" (") + E.Note + ")" : ""));

  CompileResult R = CompilerPipeline().check(Source);
  ASSERT_TRUE(R.ok()) << R.firstError();
  Result<hlsim::KernelSpec> ExtractedOr = extractKernelSpec(*R.Prog, Name);
  ASSERT_TRUE(bool(ExtractedOr)) << ExtractedOr.error().str();
  const hlsim::KernelSpec &Got = *ExtractedOr;

  // Every array of the hand spec must be declared by the port with the
  // same shape, banking, and element width. (The port may declare extra
  // working memories the spec folds into other costs, e.g. md-knn's
  // staging buffer.)
  for (const hlsim::ArraySpec &A : Expected.Arrays) {
    const hlsim::ArraySpec *G = Got.findArray(A.Name);
    ASSERT_NE(G, nullptr) << "port does not declare array '" << A.Name << "'";
    EXPECT_EQ(G->DimSizes, A.DimSizes) << A.Name;
    EXPECT_EQ(G->Partition, A.Partition) << A.Name;
    EXPECT_EQ(G->ElemBits, A.ElemBits) << A.Name;
  }

  if (E.CompareLoops) {
    ASSERT_EQ(Got.Loops.size(), Expected.Loops.size());
    for (size_t I = 0; I != Expected.Loops.size(); ++I) {
      EXPECT_EQ(Got.Loops[I].Trip, Expected.Loops[I].Trip) << "loop " << I;
      EXPECT_EQ(Got.Loops[I].Unroll, Expected.Loops[I].Unroll)
          << "loop " << I;
    }
  } else if (E.CompareTotalIters) {
    EXPECT_EQ(Got.totalIters(), Expected.totalIters());
    EXPECT_EQ(Got.totalUnroll(), Expected.totalUnroll());
  }

  EXPECT_EQ(Got.FloatingPoint, Expected.FloatingPoint);
  EXPECT_EQ(Got.HasAccumulator, Expected.HasAccumulator);

  if (E.CompareOps) {
    EXPECT_EQ(Got.MulOps, Expected.MulOps);
    EXPECT_EQ(Got.AddOps, Expected.AddOps);
  }
}

//===----------------------------------------------------------------------===//
// Generator kernels (the DSE sweep spaces)
//===----------------------------------------------------------------------===//

TEST(SpecValidation, GemmBlockedDefaultAndBanked) {
  Expectation E;
  E.CompareOps = true; // The port is written op-for-op against the spec.
  validate("gemm-blocked", gemmBlockedDahlia(GemmBlockedConfig()),
           gemmBlockedSpec(GemmBlockedConfig()), E);

  // An accepted non-trivial configuration (B = U on every coupled pair).
  GemmBlockedConfig C;
  C.Bank11 = C.Bank12 = C.Bank21 = C.Bank22 = 2;
  C.Unroll1 = C.Unroll2 = C.Unroll3 = 2;
  ASSERT_TRUE(checksSource(gemmBlockedDahlia(C)));
  validate("gemm-blocked-b2u2", gemmBlockedDahlia(C), gemmBlockedSpec(C), E);
}

TEST(SpecValidation, Stencil2d) {
  Expectation E;
  E.Note = "hand spec counts the two-level combine reduction as one add";
  validate("stencil2d", stencil2dDahlia(Stencil2dConfig()),
           stencil2dSpec(Stencil2dConfig()), E);
}

TEST(SpecValidation, MdKnnDefault) {
  Expectation E;
  E.Note = "extractor models the first (gather) nest; trips coincide with "
           "the compute nest at the default config";
  validate("md-knn", mdKnnDahlia(MdKnnConfig()), mdKnnSpec(MdKnnConfig()), E);
}

TEST(SpecValidation, MdGridDefault) {
  Expectation E;
  validate("md-grid", mdGridDahlia(MdGridConfig()), mdGridSpec(MdGridConfig()),
           E);
}

//===----------------------------------------------------------------------===//
// MachSuite ports (Figure 11)
//===----------------------------------------------------------------------===//

TEST(SpecValidation, MachSuitePortsMatchHandSpecs) {
  std::map<std::string, Expectation> Table;
  Table["aes"] = {true, false, false,
                  "spec counts abstract round adds the port elides"};
  Table["bfs-bulk"] = {true, false, false, ""};
  Table["bfs-queue"] = {true, false, false, ""};
  Table["fft-strided"] = {true, false, false,
                          "spec counts butterfly adds beyond the port's"};
  Table["gemm-blocked"] = {true, false, true, ""};
  Table["gemm-ncubed"] = {true, false, true, ""};
  Table["kmp"] = {false, false, false,
                  "data-dependent while loop is not a modelled nest"};
  Table["md-grid"] = {true, false, false, ""};
  Table["md-knn"] = {true, false, false, ""};
  Table["nw"] = {true, false, false, ""};
  Table["sort-merge"] = {false, true, false, "pass loop flattened in spec"};
  Table["sort-radix"] = {false, true, false, "pass loop flattened in spec"};
  Table["spmv-crs"] = {true, false, true, ""};
  Table["spmv-ellpack"] = {true, false, true, ""};
  Table["stencil-stencil2d"] = {true, false, false, ""};
  Table["stencil-stencil3d"] = {true, false, false, ""};

  size_t Validated = 0;
  for (const MachSuiteBenchmark &B : machSuiteBenchmarks()) {
    auto It = Table.find(B.Name);
    ASSERT_NE(It, Table.end()) << "no expectation row for " << B.Name;
    // The Rewrite spec describes the Dahlia port (the Baseline describes
    // the reference HLS implementation, same structure by construction).
    validate(B.Name, B.DahliaSource, B.Rewrite, It->second);
    ++Validated;
  }
  EXPECT_EQ(Validated, 16u);
}

//===----------------------------------------------------------------------===//
// The extractor facts the comparisons above rely on
//===----------------------------------------------------------------------===//

TEST(SpecValidation, KmpWhileNestIsUnmodelled) {
  // Pin the documented divergence: the kmp port's while loop contributes
  // accesses and ops but no loop nest.
  for (const MachSuiteBenchmark &B : machSuiteBenchmarks()) {
    if (B.Name != "kmp")
      continue;
    CompileResult R = CompilerPipeline().check(B.DahliaSource);
    ASSERT_TRUE(R.ok()) << R.firstError();
    Result<hlsim::KernelSpec> Spec = extractKernelSpec(*R.Prog);
    ASSERT_TRUE(bool(Spec));
    EXPECT_TRUE(Spec->Loops.empty());
    // The hand spec flattens the stream walk into one serial loop.
    EXPECT_EQ(B.Rewrite.totalIters(), 32411);
  }
}

} // namespace
