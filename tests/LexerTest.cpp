//===- LexerTest.cpp - Lexer unit tests -------------------------*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "lexer/Lexer.h"

#include <gtest/gtest.h>

using namespace dahlia;

namespace {

std::vector<TokKind> kindsOf(std::string_view Src) {
  Result<std::vector<Token>> R = lex(Src);
  EXPECT_TRUE(bool(R)) << (R ? "" : R.error().str());
  std::vector<TokKind> Kinds;
  if (R)
    for (const Token &T : *R)
      Kinds.push_back(T.Kind);
  return Kinds;
}

TEST(Lexer, EmptyInput) {
  auto Kinds = kindsOf("");
  ASSERT_EQ(Kinds.size(), 1u);
  EXPECT_EQ(Kinds[0], TokKind::Eof);
}

TEST(Lexer, Keywords) {
  auto Kinds = kindsOf("let view if else while for unroll combine def decl "
                       "true false bank by shrink suffix shift split skip");
  std::vector<TokKind> Expected = {
      TokKind::KwLet,    TokKind::KwView,    TokKind::KwIf,
      TokKind::KwElse,   TokKind::KwWhile,   TokKind::KwFor,
      TokKind::KwUnroll, TokKind::KwCombine, TokKind::KwDef,
      TokKind::KwDecl,   TokKind::KwTrue,    TokKind::KwFalse,
      TokKind::KwBank,   TokKind::KwBy,      TokKind::KwShrink,
      TokKind::KwSuffix, TokKind::KwShift,   TokKind::KwSplit,
      TokKind::KwSkip,   TokKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, SeqSeparatorVersusMinus) {
  auto Kinds = kindsOf("a --- b - c -= d");
  std::vector<TokKind> Expected = {TokKind::Ident,   TokKind::SeqSep,
                                   TokKind::Ident,   TokKind::Minus,
                                   TokKind::Ident,   TokKind::MinusEq,
                                   TokKind::Ident,   TokKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, RangeVersusFloat) {
  Result<std::vector<Token>> R = lex("0..10 1.5");
  ASSERT_TRUE(bool(R));
  ASSERT_GE(R->size(), 5u);
  EXPECT_EQ((*R)[0].Kind, TokKind::IntLit);
  EXPECT_EQ((*R)[0].IntValue, 0);
  EXPECT_EQ((*R)[1].Kind, TokKind::DotDot);
  EXPECT_EQ((*R)[2].Kind, TokKind::IntLit);
  EXPECT_EQ((*R)[2].IntValue, 10);
  EXPECT_EQ((*R)[3].Kind, TokKind::FloatLit);
  EXPECT_DOUBLE_EQ((*R)[3].FloatValue, 1.5);
}

TEST(Lexer, AssignVersusColon) {
  auto Kinds = kindsOf("x := 1; y : bit<32>");
  std::vector<TokKind> Expected = {
      TokKind::Ident, TokKind::Assign, TokKind::IntLit, TokKind::Semi,
      TokKind::Ident, TokKind::Colon,  TokKind::Ident,  TokKind::Lt,
      TokKind::IntLit, TokKind::Gt,    TokKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, Comments) {
  auto Kinds = kindsOf("a // line comment --- ignored\nb /* block\n * x */ c");
  std::vector<TokKind> Expected = {TokKind::Ident, TokKind::Ident,
                                   TokKind::Ident, TokKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, UnterminatedBlockCommentIsError) {
  Result<std::vector<Token>> R = lex("a /* never closed");
  EXPECT_FALSE(bool(R));
  if (!R)
    EXPECT_EQ(R.error().kind(), ErrorKind::Lex);
}

TEST(Lexer, UnknownCharacterIsError) {
  Result<std::vector<Token>> R = lex("a $ b");
  EXPECT_FALSE(bool(R));
}

TEST(Lexer, ReducerOperators) {
  auto Kinds = kindsOf("a += b -= c *= d /= e");
  std::vector<TokKind> Expected = {
      TokKind::Ident, TokKind::PlusEq,  TokKind::Ident, TokKind::MinusEq,
      TokKind::Ident, TokKind::StarEq,  TokKind::Ident, TokKind::SlashEq,
      TokKind::Ident, TokKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, ComparisonOperators) {
  auto Kinds = kindsOf("a == b != c <= d >= e < f > g && h || i");
  std::vector<TokKind> Expected = {
      TokKind::Ident, TokKind::EqEq,   TokKind::Ident, TokKind::NotEq,
      TokKind::Ident, TokKind::Le,     TokKind::Ident, TokKind::Ge,
      TokKind::Ident, TokKind::Lt,     TokKind::Ident, TokKind::Gt,
      TokKind::Ident, TokKind::AndAnd, TokKind::Ident, TokKind::OrOr,
      TokKind::Ident, TokKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, SourceLocations) {
  Result<std::vector<Token>> R = lex("let\n  x = 1;");
  ASSERT_TRUE(bool(R));
  EXPECT_EQ((*R)[0].Loc, SourceLoc(1, 1));
  EXPECT_EQ((*R)[1].Loc, SourceLoc(2, 3));
  EXPECT_EQ((*R)[2].Loc, SourceLoc(2, 5));
}

TEST(Lexer, PhysicalAccessBraces) {
  auto Kinds = kindsOf("A{0}[1]");
  std::vector<TokKind> Expected = {
      TokKind::Ident,  TokKind::LBrace,   TokKind::IntLit, TokKind::RBrace,
      TokKind::LBracket, TokKind::IntLit, TokKind::RBracket, TokKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

} // namespace
