//===- FuzzTest.cpp - Tier-1 budget for the fuzz harness --------*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
// Tier-1 coverage for src/fuzz/: generator determinism, shrinker
// soundness, a small fixed-seed differential budget that must stay clean,
// both self-test fault injections (the harness must catch an estimator
// off-by-one and a swallowed truncated frame — proof its oracles bite),
// and replay of every checked-in corpus program. The nightly CI leg runs
// the same harness via dahlia-fuzz / dahlia-fuzz-proto with bigger
// budgets and sanitizers; anything it minimizes gets checked in under
// tests/fuzz-corpus/ and replayed here forever.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Differential.h"
#include "fuzz/ProgramGen.h"
#include "fuzz/ProtoFuzz.h"
#include "service/ServiceClient.h"
#include "support/Socket.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

using namespace dahlia;
using namespace dahlia::fuzz;

namespace {

std::string renderSeed(uint64_t Seed) { return generate(Seed).render(); }

//===--------------------------------------------------------------------===//
// Generator
//===--------------------------------------------------------------------===//

TEST(ProgramGen, SameSeedRendersIdentically) {
  for (uint64_t Seed : {1u, 2u, 7u, 42u, 999u})
    EXPECT_EQ(renderSeed(Seed), renderSeed(Seed)) << "seed " << Seed;
}

TEST(ProgramGen, DifferentSeedsDiverge) {
  // Not guaranteed per-pair, but over 20 consecutive seeds at least two
  // distinct programs is a safe determinism smoke bound.
  std::set<std::string> Distinct;
  for (uint64_t Seed = 1; Seed <= 20; ++Seed)
    Distinct.insert(renderSeed(Seed));
  EXPECT_GT(Distinct.size(), 10u);
}

TEST(ProgramGen, EveryProgramDeclaresAnArray) {
  for (uint64_t Seed = 1; Seed <= 50; ++Seed) {
    GProgram P = generate(Seed);
    EXPECT_FALSE(P.Arrays.empty()) << "seed " << Seed;
    EXPECT_NE(P.render().find("decl "), std::string::npos) << "seed " << Seed;
  }
}

TEST(ProgramGen, MutateSourceIsDeterministic) {
  std::string Src = renderSeed(5);
  EXPECT_EQ(mutateSource(Src, 17), mutateSource(Src, 17));
  // A mutation should usually change the text; seed 17 is pinned to one
  // that does.
  EXPECT_NE(mutateSource(Src, 17), Src);
}

TEST(ProgramGen, ShrinkerPreservesFailureAndNeverGrows) {
  // Synthetic predicate: "fails" iff the program still contains a banked
  // array. The shrinker must keep that property while only shrinking.
  auto StillFails = [](const GProgram &P) {
    for (const GArray &A : P.Arrays)
      if (A.Bank > 1)
        return true;
    return false;
  };
  int Shrunk = 0;
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    GProgram P = generate(Seed);
    if (!StillFails(P))
      continue;
    size_t Before = detail::structuralSize(P);
    GProgram Min = shrinkProgram(P, StillFails);
    EXPECT_TRUE(StillFails(Min)) << "seed " << Seed;
    EXPECT_LE(detail::structuralSize(Min), Before) << "seed " << Seed;
    if (detail::structuralSize(Min) < Before)
      ++Shrunk;
  }
  EXPECT_GT(Shrunk, 0) << "shrinker never simplified anything";
}

//===--------------------------------------------------------------------===//
// Differential harness
//===--------------------------------------------------------------------===//

DiffOptions tier1Options() {
  DiffOptions O;
  O.ShrinkBudget = 150; // Keep tier-1 latency down; nightly uses 400.
  return O;
}

TEST(Differential, FixedSeedBudgetIsClean) {
  DiffReport R = runDifferential(1, 40, tier1Options());
  for (const DiffFailure &F : R.Failures)
    ADD_FAILURE() << "seed " << F.Seed << " [" << F.Kind << "] " << F.Detail
                  << "\n"
                  << (F.Minimized.empty() ? F.Program : F.Minimized);
  EXPECT_EQ(R.Stats.Cases, 40u);
  EXPECT_GT(R.Stats.Accepted, 0u);
  EXPECT_GT(R.Stats.Rejected, 0u) << "sabotage paths never exercised";
  EXPECT_GT(R.Stats.LadderChecks, 0u);
}

TEST(Differential, ReportJsonIsDeterministic) {
  DiffOptions O = tier1Options();
  DiffReport A = runDifferential(7, 10, O);
  DiffReport B = runDifferential(7, 10, O);
  EXPECT_EQ(A.toJson().dump(), B.toJson().dump());
}

TEST(Differential, InjectedEstimatorBiasIsCaught) {
  // The acceptance gate: a deliberate +1 on Full-fidelity cycles must
  // surface as ladder-violation failures with minimized repros.
  DiffOptions O = tier1Options();
  O.InjectFullCycleBias = 1;
  DiffReport R = runDifferential(1, 40, O);
  size_t Ladder = 0;
  bool HaveRepro = false;
  for (const DiffFailure &F : R.Failures)
    if (F.Kind == "ladder-violation") {
      ++Ladder;
      HaveRepro |= !F.Minimized.empty();
    }
  EXPECT_GT(Ladder, 0u) << "injected off-by-one went undetected";
  EXPECT_TRUE(HaveRepro) << "no ladder violation carried a minimized repro";
}

TEST(Differential, CorpusReplaysClean) {
  // Every checked-in program (minimized nightly finds + hand-written
  // crash-class seeds) must stay failure-free through the full oracle
  // stack.
  std::filesystem::path Dir = DAHLIA_FUZZ_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(Dir)) << Dir;
  DiffOptions O = tier1Options();
  DiffStats Stats;
  int Replayed = 0;
  for (const auto &E : std::filesystem::directory_iterator(Dir)) {
    if (E.path().extension() != ".fuse")
      continue;
    std::ifstream In(E.path());
    ASSERT_TRUE(In.good()) << E.path();
    std::ostringstream SS;
    SS << In.rdbuf();
    std::optional<DiffFailure> F = checkSource(SS.str(), O, Stats);
    EXPECT_FALSE(F.has_value())
        << E.path() << ": [" << F->Kind << "] " << F->Detail;
    ++Replayed;
  }
  EXPECT_GE(Replayed, 6) << "corpus went missing";
}

//===--------------------------------------------------------------------===//
// Protocol soak (small budget; ServiceTest runs it under TSan too)
//===--------------------------------------------------------------------===//

TEST(ProtoFuzz, SmallSoakIsClean) {
  if (!haveSockets())
    GTEST_SKIP() << "no socket support on this platform";
  ProtoFuzzOptions O;
  O.Rounds = 1;
  ProtoFuzzReport R = runProtoFuzz(O);
  for (const ProtoFailure &F : R.Failures)
    ADD_FAILURE() << "round " << F.Round << " [" << F.Attack << "] "
                  << F.Detail;
  EXPECT_FALSE(R.Stats.Skipped);
  EXPECT_GT(R.Stats.Attacks, 0u);
  EXPECT_GT(R.Stats.WellBehavedBatches, 0u)
      << "well-behaved clients never completed a batch during the soak";
}

TEST(ProtoFuzz, InjectedSwallowedFrameIsCaught) {
  if (!haveSockets())
    GTEST_SKIP() << "no socket support on this platform";
  ProtoFuzzOptions O;
  O.Rounds = 1;
  O.InjectSwallowTruncated = true;
  ProtoFuzzReport R = runProtoFuzz(O);
  size_t Hits = 0;
  for (const ProtoFailure &F : R.Failures)
    if (F.Attack == "truncated-frame")
      ++Hits;
  EXPECT_GT(Hits, 0u) << "swallowed truncated frame went undetected";
}

//===--------------------------------------------------------------------===//
// Cluster dialect (hostile workers vs coordinator; nightly runs more
// rounds via dahlia-fuzz-proto --cluster)
//===--------------------------------------------------------------------===//

TEST(ProtoFuzz, ClusterDialectSmallSoakIsClean) {
  if (!haveSockets())
    GTEST_SKIP() << "no socket support on this platform";
  ClusterFuzzOptions O;
  O.Rounds = 1;
  O.Limit = 60;
  ProtoFuzzReport R = runClusterFuzz(O);
  for (const ProtoFailure &F : R.Failures)
    ADD_FAILURE() << "round " << F.Round << " [" << F.Attack << "] "
                  << F.Detail;
  EXPECT_FALSE(R.Stats.Skipped);
  EXPECT_GT(R.Stats.Attacks, 0u);
}

TEST(ProtoFuzz, ClusterCorpusRepliesDecodeToStructuredErrors) {
  // Minimized wire-level finds from the cluster dialect: each .lines
  // script is a hostile worker's reply stream, pinned forever. Replay
  // through the strict client decoder — exactly how the coordinator
  // reads a shard — and require a structured error, never an Ok sweep.
  std::filesystem::path Dir = DAHLIA_FUZZ_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(Dir)) << Dir;
  int Replayed = 0;
  for (const auto &E : std::filesystem::directory_iterator(Dir)) {
    if (E.path().extension() != ".lines")
      continue;
    std::ifstream In(E.path());
    ASSERT_TRUE(In.good()) << E.path();
    std::string Wire, Line;
    while (std::getline(In, Line))
      if (!Line.empty() && Line[0] != '#')
        Wire += Line + "\n";

    std::istringstream Responses(Wire);
    std::ostringstream Requests;
    service::ServiceClient C(Responses, Requests);
    C.setStrict(true);
    service::Request R;
    R.Kind = service::Op::DseSweep;
    R.Space = "gemm-blocked";
    R.Stream = true;
    service::ClientResponse Resp = C.call(std::move(R));
    EXPECT_FALSE(Resp.R.Ok) << E.path() << " decoded as success";
    EXPECT_FALSE(Resp.R.Errors.empty())
        << E.path() << " failed without a structured error";
    ++Replayed;
  }
  EXPECT_GE(Replayed, 2) << "cluster wire corpus went missing";
}

} // namespace
