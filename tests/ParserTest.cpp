//===- ParserTest.cpp - Parser unit tests -----------------------*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

#include "ast/ASTPrinter.h"

#include <gtest/gtest.h>

using namespace dahlia;

namespace {

CmdPtr parseOK(std::string_view Src) {
  Result<CmdPtr> R = parseCommand(Src);
  EXPECT_TRUE(bool(R)) << (R ? "" : R.error().str()) << "\nsource: " << Src;
  return R ? R.take() : nullptr;
}

TEST(Parser, TypeSyntax) {
  Result<TypeRef> T = parseType("float[8 bank 4]");
  ASSERT_TRUE(bool(T));
  EXPECT_EQ((*T)->str(), "float[8 bank 4]");

  T = parseType("bit<32>");
  ASSERT_TRUE(bool(T));
  EXPECT_EQ((*T)->str(), "bit<32>");
  EXPECT_TRUE((*T)->isSignedBit());

  T = parseType("ubit<10>");
  ASSERT_TRUE(bool(T));
  EXPECT_FALSE((*T)->isSignedBit());

  T = parseType("float{2}[10]");
  ASSERT_TRUE(bool(T));
  EXPECT_EQ((*T)->memPorts(), 2u);

  T = parseType("float[4 bank 2][4 bank 2]");
  ASSERT_TRUE(bool(T));
  EXPECT_EQ((*T)->memDims().size(), 2u);
  EXPECT_EQ((*T)->memTotalBanks(), 4);
}

TEST(Parser, BadTypeSyntax) {
  EXPECT_FALSE(bool(parseType("quux")));
  EXPECT_FALSE(bool(parseType("bit<>")));
  EXPECT_FALSE(bool(parseType("bit<0>")));
  EXPECT_FALSE(bool(parseType("float{2}"))); // ports need a memory
}

TEST(Parser, LetForms) {
  CmdPtr C = parseOK("let A: float[10];");
  ASSERT_TRUE(C);
  auto *L = C->as<LetCmd>();
  ASSERT_TRUE(L);
  EXPECT_EQ(L->name(), "A");
  ASSERT_TRUE(L->declType());
  EXPECT_TRUE(L->declType()->isMem());
  EXPECT_EQ(L->init(), nullptr);

  C = parseOK("let x = A[0];");
  L = C->as<LetCmd>();
  ASSERT_TRUE(L);
  EXPECT_EQ(L->declType(), nullptr);
  ASSERT_NE(L->init(), nullptr);
  EXPECT_TRUE(L->init()->as<AccessExpr>());
}

TEST(Parser, MultiNameLet) {
  CmdPtr C = parseOK("let A, B: float[12 bank 4];");
  auto *P = C->as<ParCmd>();
  ASSERT_TRUE(P);
  EXPECT_EQ(P->cmds().size(), 2u);
  EXPECT_TRUE(P->cmds()[0]->as<LetCmd>());
  EXPECT_TRUE(P->cmds()[1]->as<LetCmd>());
}

TEST(Parser, LetNeedsTypeOrInit) {
  EXPECT_FALSE(bool(parseCommand("let x;")));
}

TEST(Parser, OrderedComposition) {
  CmdPtr C = parseOK("let x = A[0]\n---\nA[1] := 1;");
  auto *S = C->as<SeqCmd>();
  ASSERT_TRUE(S);
  EXPECT_EQ(S->cmds().size(), 2u);
  EXPECT_TRUE(S->cmds()[0]->as<LetCmd>());
  EXPECT_TRUE(S->cmds()[1]->as<StoreCmd>());
}

TEST(Parser, UnorderedComposition) {
  CmdPtr C = parseOK("let x = 1; let y = 2; let z = 3;");
  auto *P = C->as<ParCmd>();
  ASSERT_TRUE(P);
  EXPECT_EQ(P->cmds().size(), 3u);
}

TEST(Parser, NestedBlockWithSeq) {
  // The paper's Section 3.2 example shape.
  CmdPtr C = parseOK("let A: float[10]; let B: float[10];\n"
                     "{\n  let x = A[0] + 1\n  ---\n  B[1] := A[1] + x\n};\n"
                     "let y = B[0];");
  auto *P = C->as<ParCmd>();
  ASSERT_TRUE(P);
  ASSERT_EQ(P->cmds().size(), 4u);
  EXPECT_TRUE(P->cmds()[2]->as<BlockCmd>());
  EXPECT_TRUE(P->cmds()[2]->as<BlockCmd>()->body().as<SeqCmd>());
}

TEST(Parser, ForWithUnrollAndCombine) {
  CmdPtr C = parseOK("for (let i = 0..10) unroll 2 {\n"
                     "  let v = A[i] * B[i];\n"
                     "} combine {\n  dot += v;\n}");
  auto *F = C->as<ForCmd>();
  ASSERT_TRUE(F);
  EXPECT_EQ(F->iter(), "i");
  EXPECT_EQ(F->lo(), 0);
  EXPECT_EQ(F->hi(), 10);
  EXPECT_EQ(F->unroll(), 2);
  ASSERT_TRUE(F->combine());
  const Cmd &Comb = F->combine()->as<BlockCmd>()->body();
  EXPECT_TRUE(Comb.as<ReduceAssignCmd>());
}

TEST(Parser, ForDefaultUnrollIsOne) {
  CmdPtr C = parseOK("for (let i = 0..8) { A[i] := 0; }");
  auto *F = C->as<ForCmd>();
  ASSERT_TRUE(F);
  EXPECT_EQ(F->unroll(), 1);
  EXPECT_EQ(F->combine(), nullptr);
}

TEST(Parser, ViewDeclarations) {
  CmdPtr C = parseOK("view sh = shrink A[by 2];");
  auto *V = C->as<ViewCmd>();
  ASSERT_TRUE(V);
  EXPECT_EQ(V->viewKind(), ViewKind::Shrink);
  EXPECT_EQ(V->mem(), "A");
  ASSERT_EQ(V->params().size(), 1u);
  EXPECT_EQ(V->params()[0].Factor, 2);

  C = parseOK("view v = suffix M[by 2*i];");
  V = C->as<ViewCmd>();
  ASSERT_TRUE(V);
  EXPECT_EQ(V->viewKind(), ViewKind::Suffix);
  ASSERT_TRUE(V->params()[0].Offset);

  C = parseOK("view w = shift orig[by row][by col];");
  V = C->as<ViewCmd>();
  ASSERT_TRUE(V);
  EXPECT_EQ(V->viewKind(), ViewKind::Shift);
  EXPECT_EQ(V->params().size(), 2u);
}

TEST(Parser, MultiViewDeclaration) {
  // Paper Section 3.6: view shA, shB = shrink A[by 2], B[by 2];
  CmdPtr C = parseOK("view shA, shB = shrink A[by 2], B[by 2];");
  auto *P = C->as<ParCmd>();
  ASSERT_TRUE(P);
  ASSERT_EQ(P->cmds().size(), 2u);
  EXPECT_EQ(P->cmds()[0]->as<ViewCmd>()->name(), "shA");
  EXPECT_EQ(P->cmds()[1]->as<ViewCmd>()->mem(), "B");
}

TEST(Parser, PhysicalAccess) {
  CmdPtr C = parseOK("A{0}[0] := 1;");
  auto *S = C->as<StoreCmd>();
  ASSERT_TRUE(S);
  EXPECT_TRUE(S->target().as<PhysAccessExpr>());
}

TEST(Parser, IfElseChain) {
  CmdPtr C = parseOK("if (x < 1) { skip; } else if (x < 2) { skip; } "
                     "else { skip; }");
  auto *I = C->as<IfCmd>();
  ASSERT_TRUE(I);
  ASSERT_TRUE(I->elseCmd());
  EXPECT_TRUE(I->elseCmd()->as<IfCmd>());
}

TEST(Parser, WhileLoop) {
  CmdPtr C = parseOK("while (going) { x := x + 1; }");
  ASSERT_TRUE(C->as<WhileCmd>());
}

TEST(Parser, ExpressionPrecedence) {
  Result<ExprPtr> E = parseExpression("a + b * c");
  ASSERT_TRUE(bool(E));
  EXPECT_EQ(printExpr(**E), "(a + (b * c))");

  E = parseExpression("a * b + c");
  ASSERT_TRUE(bool(E));
  EXPECT_EQ(printExpr(**E), "((a * b) + c)");

  E = parseExpression("a < b && c < d || e == f");
  ASSERT_TRUE(bool(E));
  EXPECT_EQ(printExpr(**E), "(((a < b) && (c < d)) || (e == f))");

  E = parseExpression("-x + y");
  ASSERT_TRUE(bool(E));
  EXPECT_EQ(printExpr(**E), "((0 - x) + y)");
}

TEST(Parser, MultiDimAccess) {
  Result<ExprPtr> E = parseExpression("M[i][j + 1]");
  ASSERT_TRUE(bool(E));
  auto *A = (*E)->as<AccessExpr>();
  ASSERT_TRUE(A);
  EXPECT_EQ(A->indices().size(), 2u);
}

TEST(Parser, FunctionDefAndCall) {
  Result<Program> P = parseProgram("def f(x: bit<32>, m: float[4]): float {\n"
                                   "  let y = m[0];\n"
                                   "}\n"
                                   "decl A: float[4];\n"
                                   "let z = f(1, A);");
  ASSERT_TRUE(bool(P)) << (P ? "" : P.error().str());
  EXPECT_EQ(P->Funcs.size(), 1u);
  EXPECT_EQ(P->Funcs[0].Params.size(), 2u);
  EXPECT_EQ(P->Decls.size(), 1u);
  ASSERT_TRUE(P->Body);
}

TEST(Parser, SyntaxErrors) {
  EXPECT_FALSE(bool(parseCommand("let = 3;")));
  EXPECT_FALSE(bool(parseCommand("for i = 0..4 { }")));
  EXPECT_FALSE(bool(parseCommand("view v = bogus A[by 2];")));
  EXPECT_FALSE(bool(parseCommand("A[0 := 2;")));
  EXPECT_FALSE(bool(parseCommand("1 := 2;")));
}

TEST(Parser, PrinterRoundTrip) {
  const char *Sources[] = {
      "let A: float[10 bank 2];",
      "for (let i = 0..10) unroll 2 {\n  let v = A[i];\n} combine {\n"
      "  dot += v;\n}",
      "view sh = shrink A[by 2];",
      "if ((x < 1)) {\n  y := 2;\n} else {\n  y := 3;\n}",
      "let x = A[0]\n---\nA[1] := 1;",
  };
  for (const char *Src : Sources) {
    Result<CmdPtr> First = parseCommand(Src);
    ASSERT_TRUE(bool(First)) << Src;
    std::string Printed = printCmd(**First);
    Result<CmdPtr> Second = parseCommand(Printed);
    ASSERT_TRUE(bool(Second)) << "reparse failed for:\n" << Printed;
    EXPECT_EQ(printCmd(**Second), Printed) << Src;
  }
}

TEST(Parser, DeepNestingIsRejectedNotACrash) {
  // Crash-class inputs from the byte-level fuzzer: pathological nesting
  // must hit the recursive-descent depth limit and come back as a parse
  // error, not blow the stack.
  std::string DeepExpr = "let x = " + std::string(100000, '(') + "1" +
                         std::string(100000, ')') + ";";
  Result<CmdPtr> E = parseCommand(DeepExpr);
  EXPECT_FALSE(bool(E));

  std::string DeepBlocks(100000, '{');
  DeepBlocks += "let y = 1;";
  DeepBlocks += std::string(100000, '}');
  Result<CmdPtr> B = parseCommand(DeepBlocks);
  EXPECT_FALSE(bool(B));
}

TEST(Parser, NestingJustUnderTheLimitParses) {
  // The depth guard must not reject reasonable programs.
  std::string Expr = "let x = " + std::string(200, '(') + "1" +
                     std::string(200, ')') + ";";
  EXPECT_TRUE(bool(parseCommand(Expr)));

  std::string Blocks(100, '{');
  Blocks += "let y = 1;";
  Blocks += std::string(100, '}');
  EXPECT_TRUE(bool(parseCommand(Blocks)));
}

} // namespace
