//===- TraceTest.cpp - Span tracing and metrics registry tests --*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
// The observability contract of support/Trace.h and support/Metrics.h:
// spans nest correctly across threads and serialize as well-formed Chrome
// trace-event JSON (named tracks, trace-id args, synthetic connection
// tracks), a disabled TRACE_SPAN allocates nothing, and the metrics
// registry's counters/gauges/histograms aggregate and snapshot as
// documented in docs/observability.md.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"
#include "support/Trace.h"

#include "support/Json.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

using namespace dahlia;

//===----------------------------------------------------------------------===//
// Global allocation counting (for the disabled-mode zero-allocation test)
//===----------------------------------------------------------------------===//

namespace {
std::atomic<size_t> GAllocCount{0};
}

void *operator new(std::size_t N) {
  GAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(N ? N : 1))
    return P;
  throw std::bad_alloc();
}
void *operator new[](std::size_t N) { return ::operator new(N); }
void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }

namespace {

/// Every test leaves tracing off and the buffers empty, so tests compose
/// in any order within the binary.
class TraceTest : public ::testing::Test {
protected:
  void SetUp() override {
    trace::traceDisable();
    trace::traceClear();
  }
  void TearDown() override {
    trace::traceDisable();
    trace::traceClear();
  }

  static Json parsedTrace() {
    std::optional<Json> J = Json::parse(trace::traceToChromeJson());
    EXPECT_TRUE(J.has_value());
    return J ? *J : Json();
  }

  /// All "ph":"X" events named \p Name.
  static std::vector<Json> spansNamed(const Json &Root,
                                      const std::string &Name) {
    std::vector<Json> Out;
    for (const Json &E : Root.at("traceEvents").asArray())
      if (E.at("ph").asString() == "X" && E.at("name").asString() == Name)
        Out.push_back(E);
    return Out;
  }

  /// The thread_name metadata value for \p Tid, or "" when absent.
  static std::string threadNameOf(const Json &Root, int64_t Tid) {
    for (const Json &E : Root.at("traceEvents").asArray())
      if (E.at("ph").asString() == "M" &&
          E.at("name").asString() == "thread_name" &&
          E.at("tid").asInt() == Tid)
        return E.at("args").at("name").asString();
    return {};
  }
};

//===----------------------------------------------------------------------===//
// Span recording
//===----------------------------------------------------------------------===//

TEST_F(TraceTest, SpansNestWithinOneThread) {
  trace::traceEnable();
  {
    TRACE_SPAN("outer");
    TRACE_SPAN("inner");
  }
  trace::traceDisable();

  Json Root = parsedTrace();
  std::vector<Json> Outer = spansNamed(Root, "outer");
  std::vector<Json> Inner = spansNamed(Root, "inner");
  ASSERT_EQ(Outer.size(), 1u);
  ASSERT_EQ(Inner.size(), 1u);

  // Same thread, and the inner interval is contained in the outer one.
  EXPECT_EQ(Outer[0].at("tid").asInt(), Inner[0].at("tid").asInt());
  int64_t OS = Outer[0].at("ts").asInt(), OD = Outer[0].at("dur").asInt();
  int64_t IS = Inner[0].at("ts").asInt(), ID = Inner[0].at("dur").asInt();
  EXPECT_LE(OS, IS);
  EXPECT_LE(IS + ID, OS + OD);
}

TEST_F(TraceTest, ThreadsRecordOntoDistinctNamedTracks) {
  trace::traceEnable();
  constexpr unsigned N = 4;
  std::vector<std::thread> Workers;
  for (unsigned W = 0; W != N; ++W)
    Workers.emplace_back([W] {
      trace::traceSetThreadName("worker-" + std::to_string(W));
      TRACE_SPAN("work");
    });
  for (std::thread &T : Workers)
    T.join();
  trace::traceDisable();

  Json Root = parsedTrace();
  std::vector<Json> Work = spansNamed(Root, "work");
  ASSERT_EQ(Work.size(), N);

  // Every span sits on its own tid, and each tid carries its name.
  std::vector<int64_t> Tids;
  for (const Json &S : Work)
    Tids.push_back(S.at("tid").asInt());
  std::sort(Tids.begin(), Tids.end());
  EXPECT_EQ(std::unique(Tids.begin(), Tids.end()), Tids.end());
  unsigned Named = 0;
  for (int64_t Tid : Tids)
    if (threadNameOf(Root, Tid).rfind("worker-", 0) == 0)
      ++Named;
  EXPECT_EQ(Named, N);
}

TEST_F(TraceTest, SpansCarryTheScopedTraceId) {
  trace::traceEnable();
  {
    trace::TraceIdScope Scope(42);
    EXPECT_EQ(trace::currentTraceId(), 42u);
    {
      trace::TraceIdScope Inner(7);
      EXPECT_EQ(trace::currentTraceId(), 7u);
      TRACE_SPAN("tagged");
    }
    EXPECT_EQ(trace::currentTraceId(), 42u); // Restored on scope exit.
  }
  EXPECT_EQ(trace::currentTraceId(), 0u);
  trace::traceDisable();

  std::vector<Json> Tagged = spansNamed(parsedTrace(), "tagged");
  ASSERT_EQ(Tagged.size(), 1u);
  EXPECT_EQ(Tagged[0].at("args").at("trace_id").asInt(), 7);
}

TEST_F(TraceTest, SyntheticTracksRenderAsNamedRows) {
  trace::traceEnable();
  uint64_t Track = trace::traceMakeTrack("conn-9");
  ASSERT_NE(Track, 0u);
  EXPECT_GE(Track, uint64_t(1) << 20); // Clear of real thread tids.
  uint64_t Start = trace::nowUs();
  trace::traceSpanOnTrack(Track, "server.connection", Start, 5,
                          /*TraceId=*/3);
  trace::traceDisable();

  Json Root = parsedTrace();
  std::vector<Json> Conn = spansNamed(Root, "server.connection");
  ASSERT_EQ(Conn.size(), 1u);
  EXPECT_EQ(Conn[0].at("tid").asInt(), static_cast<int64_t>(Track));
  EXPECT_EQ(Conn[0].at("dur").asInt(), 5);
  EXPECT_EQ(Conn[0].at("args").at("trace_id").asInt(), 3);
  EXPECT_EQ(threadNameOf(Root, static_cast<int64_t>(Track)), "conn-9");
}

TEST_F(TraceTest, DisabledTracingRecordsAndAllocatesNothing) {
  ASSERT_FALSE(trace::enabled());
  // Warm-up: any lazy statics the span path touches initialize here.
  { TRACE_SPAN("warmup"); }

  size_t Before = GAllocCount.load(std::memory_order_relaxed);
  for (int I = 0; I != 10000; ++I) {
    TRACE_SPAN("disabled");
  }
  size_t After = GAllocCount.load(std::memory_order_relaxed);

  EXPECT_EQ(After - Before, 0u);
  EXPECT_EQ(trace::bufferedSpanCount(), 0u);
  EXPECT_EQ(trace::traceMakeTrack("ignored"), 0u);
}

TEST_F(TraceTest, ChromeJsonIsWellFormed) {
  trace::traceEnable();
  trace::traceSetThreadName("main");
  { TRACE_SPAN("alpha"); }
  { TRACE_SPAN("beta"); }
  trace::traceDisable();

  std::optional<Json> Root = Json::parse(trace::traceToChromeJson());
  ASSERT_TRUE(Root.has_value());
  ASSERT_TRUE(Root->isObject());
  EXPECT_EQ(Root->at("displayTimeUnit").asString(), "ms");
  const std::vector<Json> &Events = Root->at("traceEvents").asArray();
  ASSERT_GE(Events.size(), 3u); // Two spans + the thread_name record.
  for (const Json &E : Events) {
    const std::string &Ph = E.at("ph").asString();
    ASSERT_TRUE(Ph == "X" || Ph == "M");
    EXPECT_FALSE(E.at("name").asString().empty());
    EXPECT_EQ(E.at("pid").asInt(), 1);
    EXPECT_GT(E.at("tid").asInt(), 0);
    if (Ph == "X") {
      EXPECT_GE(E.at("ts").asInt(), 0);
      EXPECT_GE(E.at("dur").asInt(), 0);
    } else {
      EXPECT_EQ(E.at("name").asString(), "thread_name");
      EXPECT_FALSE(E.at("args").at("name").asString().empty());
    }
  }
}

TEST_F(TraceTest, ClearDropsEverything) {
  trace::traceEnable();
  { TRACE_SPAN("doomed"); }
  (void)trace::traceMakeTrack("doomed-track");
  EXPECT_GT(trace::bufferedSpanCount(), 0u);
  trace::traceClear();
  EXPECT_EQ(trace::bufferedSpanCount(), 0u);
  EXPECT_TRUE(spansNamed(parsedTrace(), "doomed").empty());
}

//===----------------------------------------------------------------------===//
// Metrics registry
//===----------------------------------------------------------------------===//

TEST(MetricsTest, CountersAndGaugesAggregate) {
  metrics::Counter &C = metrics::counter("test.counter");
  C.reset();
  C.inc();
  C.inc(9);
  EXPECT_EQ(C.value(), 10u);
  // Same name resolves to the same object.
  EXPECT_EQ(&metrics::counter("test.counter"), &C);

  metrics::Gauge &G = metrics::gauge("test.gauge");
  G.reset();
  G.set(5);
  G.setMax(3); // Below the current value: no effect.
  EXPECT_EQ(G.value(), 5);
  G.setMax(12);
  EXPECT_EQ(G.value(), 12);
}

TEST(MetricsTest, HistogramQuantilesLandInTheRecordedRange) {
  metrics::Histogram &H = metrics::histogram("test.histogram");
  H.reset();
  // 90 fast (1ms) and 10 slow (100ms) samples: p50 ~ 1ms, p99 ~ 100ms.
  for (int I = 0; I != 90; ++I)
    H.recordUs(1000);
  for (int I = 0; I != 10; ++I)
    H.recordUs(100000);
  EXPECT_EQ(H.count(), 100u);
  EXPECT_NEAR(H.maxMs(), 100.0, 0.01);
  EXPECT_NEAR(H.meanMs(), 10.9, 0.1);
  // Log-bucketed: quantiles are approximate (8 sub-buckets per octave,
  // <= ~12% error); assert the right bucket neighborhood, not equality.
  EXPECT_GT(H.percentileMs(0.5), 0.5);
  EXPECT_LT(H.percentileMs(0.5), 2.0);
  EXPECT_GT(H.percentileMs(0.99), 50.0);
  EXPECT_LT(H.percentileMs(0.99), 200.0);
  EXPECT_LE(H.percentileMs(0.5), H.percentileMs(0.95));
  EXPECT_LE(H.percentileMs(0.95), H.percentileMs(0.99));
}

TEST(MetricsTest, SnapshotSerializesEveryRegisteredKind) {
  metrics::counter("test.snap_counter").reset();
  metrics::counter("test.snap_counter").inc(3);
  metrics::gauge("test.snap_gauge").set(-4);
  metrics::Histogram &H = metrics::histogram("test.snap_hist");
  H.reset();
  H.recordMs(2.0);

  Json S = metrics::snapshot();
  ASSERT_TRUE(S.isObject());
  EXPECT_EQ(S.at("counters").at("test.snap_counter").asInt(), 3);
  EXPECT_EQ(S.at("gauges").at("test.snap_gauge").asInt(), -4);
  const Json &HJ = S.at("histograms").at("test.snap_hist");
  EXPECT_EQ(HJ.at("count").asInt(), 1);
  EXPECT_GT(HJ.at("p50_ms").asDouble(), 0.0);
  EXPECT_GT(HJ.at("p95_ms").asDouble(), 0.0);
  EXPECT_GT(HJ.at("p99_ms").asDouble(), 0.0);
  EXPECT_GT(HJ.at("max_ms").asDouble(), 0.0);
  EXPECT_GT(HJ.at("mean_ms").asDouble(), 0.0);

  std::vector<std::string> Names = metrics::registeredNames();
  EXPECT_TRUE(std::is_sorted(Names.begin(), Names.end()));
  EXPECT_NE(std::find(Names.begin(), Names.end(), "test.snap_counter"),
            Names.end());
}

TEST(MetricsTest, ResetAllZeroesTheRegistry) {
  metrics::counter("test.reset_me").inc(7);
  metrics::resetAll();
  EXPECT_EQ(metrics::counter("test.reset_me").value(), 0u);
}

} // namespace
