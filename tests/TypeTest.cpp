//===- TypeTest.cpp - Type representation tests -----------------*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "ast/Type.h"

#include <gtest/gtest.h>

using namespace dahlia;

namespace {

TEST(Type, ScalarPrinting) {
  EXPECT_EQ(Type::getBool()->str(), "bool");
  EXPECT_EQ(Type::getFloat()->str(), "float");
  EXPECT_EQ(Type::getDouble()->str(), "double");
  EXPECT_EQ(Type::getBit(32)->str(), "bit<32>");
  EXPECT_EQ(Type::getBit(10, false)->str(), "ubit<10>");
  EXPECT_EQ(Type::getIdx(0, 4)->str(), "idx{0..4}");
}

TEST(Type, MemPrinting) {
  TypeRef M = Type::getMem(Type::getFloat(), {{8, 4}});
  EXPECT_EQ(M->str(), "float[8 bank 4]");
  TypeRef M2 = Type::getMem(Type::getFloat(), {{4, 2}, {4, 2}}, 2);
  EXPECT_EQ(M2->str(), "float{2}[4 bank 2][4 bank 2]");
  TypeRef M3 = Type::getMem(Type::getBit(32), {{10, 1}});
  EXPECT_EQ(M3->str(), "bit<32>[10]");
}

TEST(Type, TotalBanksAndSize) {
  TypeRef M = Type::getMem(Type::getFloat(), {{4, 2}, {6, 3}});
  EXPECT_EQ(M->memTotalBanks(), 6);
  EXPECT_EQ(M->memTotalSize(), 24);
}

TEST(Type, StructuralEquality) {
  TypeRef A = Type::getMem(Type::getFloat(), {{8, 4}});
  TypeRef B = Type::getMem(Type::getFloat(), {{8, 4}});
  TypeRef C = Type::getMem(Type::getFloat(), {{8, 2}});
  EXPECT_TRUE(A->equals(*B));
  EXPECT_FALSE(A->equals(*C));
  EXPECT_TRUE(Type::getBit(32)->equals(*Type::getBit(32)));
  EXPECT_FALSE(Type::getBit(32)->equals(*Type::getBit(16)));
  EXPECT_FALSE(Type::getBit(32)->equals(*Type::getBit(32, false)));
}

TEST(Type, NumericConversions) {
  // bit widens into float/double; idx widens into bit.
  EXPECT_TRUE(Type::getFloat()->accepts(*Type::getBit(32)));
  EXPECT_TRUE(Type::getDouble()->accepts(*Type::getFloat()));
  EXPECT_TRUE(Type::getBit(32)->accepts(*Type::getIdx(0, 4)));
  EXPECT_TRUE(Type::getBit(16)->accepts(*Type::getBit(32)));
  EXPECT_FALSE(Type::getBool()->accepts(*Type::getBit(1)));
  EXPECT_FALSE(Type::getIdx(0, 4)->accepts(*Type::getBit(32)));
}

TEST(Type, IdxCarriesInterval) {
  TypeRef I = Type::getIdx(2, 6, 0, 32);
  EXPECT_EQ(I->idxLo(), 2);
  EXPECT_EQ(I->idxHi(), 6);
  EXPECT_EQ(I->idxDynLo(), 0);
  EXPECT_EQ(I->idxDynHi(), 32);
}

} // namespace
