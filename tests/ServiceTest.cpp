//===- ServiceTest.cpp - Compile service and protocol tests -----*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
// The service contract: the JSON wire format round-trips; batches answer
// in request order with per-request latencies; the memo cache serves
// repeats (including rejections, with their diagnostics); sessions reuse
// the parse across bank/unroll rewrites and agree with full re-compiles;
// dse-sweep requests match the engine run directly; and a service restart
// over a cache directory starts warm.
//
//===----------------------------------------------------------------------===//

#include "service/ServiceClient.h"

#include "driver/CompilerPipeline.h"
#include "dse/SearchStrategy.h"
#include "kernels/Kernels.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

using namespace dahlia;
using namespace dahlia::service;

namespace fs = std::filesystem;

namespace {

const char *AcceptedSrc = "decl A: float[8 bank 4];\n"
                          "for (let i = 0..8) unroll 4 { A[i] := 1.0; }\n";
const char *RejectedSrc = "decl A: float[10];\n"
                          "let x = A[0]; A[1] := 1.0;\n";

//===----------------------------------------------------------------------===//
// Json
//===----------------------------------------------------------------------===//

TEST(Json, ParseDumpRoundTrip) {
  const char *Text =
      R"({"a":[1,2.5,true,null,"x\n\"y\""],"b":{"c":-7},"d":""})";
  std::string Err;
  auto J = Json::parse(Text, &Err);
  ASSERT_TRUE(J.has_value()) << Err;
  EXPECT_EQ(J->at("a").size(), 5u);
  EXPECT_EQ(J->at("a").asArray()[0].asInt(), 1);
  EXPECT_DOUBLE_EQ(J->at("a").asArray()[1].asDouble(), 2.5);
  EXPECT_TRUE(J->at("a").asArray()[2].asBool());
  EXPECT_TRUE(J->at("a").asArray()[3].isNull());
  EXPECT_EQ(J->at("a").asArray()[4].asString(), "x\n\"y\"");
  EXPECT_EQ(J->at("b").at("c").asInt(), -7);

  // dump -> parse -> dump is a fixed point (keys are sorted).
  std::string Dumped = J->dump();
  auto Again = Json::parse(Dumped, &Err);
  ASSERT_TRUE(Again.has_value()) << Err;
  EXPECT_EQ(Again->dump(), Dumped);
}

TEST(Json, RejectsMalformedInput) {
  for (const char *Bad : {"", "{", "[1,", "{\"a\":}", "tru", "\"unterm",
                          "{\"a\":1}trailing", "nan", "01x"})
    EXPECT_FALSE(Json::parse(Bad).has_value()) << Bad;
}

TEST(Json, IntegersRoundTripExactly) {
  int64_t Big = 9007199254740993; // 2^53 + 1: not representable as double.
  Json J = Json::object();
  J["v"] = Big;
  auto Back = Json::parse(J.dump());
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->at("v").asInt(), Big);
}

//===----------------------------------------------------------------------===//
// Protocol
//===----------------------------------------------------------------------===//

TEST(Protocol, RequestRoundTrip) {
  Request R;
  R.Id = 42;
  R.Kind = Op::Check;
  R.Session = "s1";
  Rewrite Rw;
  Rw.Banks["A"] = {2, 4};
  Rw.Unrolls["i"] = 4;
  R.Rw = Rw;

  std::string Err;
  auto Back = Request::fromJson(R.toJson().dump(), &Err);
  ASSERT_TRUE(Back.has_value()) << Err;
  EXPECT_EQ(Back->Id, 42);
  EXPECT_EQ(Back->Session, "s1");
  ASSERT_TRUE(Back->Rw.has_value());
  EXPECT_EQ(Back->Rw->Banks.at("A"), (std::vector<int64_t>{2, 4}));
  EXPECT_EQ(Back->Rw->Unrolls.at("i"), 4);
}

TEST(Protocol, RejectsInvalidRequests) {
  std::string Err;
  EXPECT_FALSE(Request::fromJson("not json", &Err).has_value());
  EXPECT_FALSE(Request::fromJson("[1,2]", &Err).has_value());
  EXPECT_FALSE(
      Request::fromJson(R"({"id":1,"op":"frobnicate","source":"x"})", &Err)
          .has_value());
  EXPECT_FALSE(Request::fromJson(R"({"id":1,"op":"check"})", &Err)
                   .has_value()); // no source
  EXPECT_FALSE(Request::fromJson(R"({"id":1,"op":"dse-sweep"})", &Err)
                   .has_value()); // no space
  // A thread/limit request outside sane bounds must not reach the worker
  // pool (a negative value would otherwise wrap to a huge unsigned).
  EXPECT_FALSE(
      Request::fromJson(
          R"({"id":1,"op":"dse-sweep","space":"gemm-blocked","threads":-1})",
          &Err)
          .has_value());
  EXPECT_FALSE(
      Request::fromJson(
          R"({"id":1,"op":"dse-sweep","space":"gemm-blocked","limit":-5})",
          &Err)
          .has_value());
  // source + rewrite is ambiguous; the client must pick one.
  EXPECT_FALSE(
      Request::fromJson(
          R"({"id":1,"op":"check","session":"s","source":"x","rewrite":{}})",
          &Err)
          .has_value());
}

//===----------------------------------------------------------------------===//
// CompileService
//===----------------------------------------------------------------------===//

ServiceOptions testOptions() {
  ServiceOptions O;
  O.Threads = 2;
  O.MaxBatch = 8;
  return O; // No cache dir: persistence is tested separately.
}

TEST(Service, CheckEstimateLowerAnswer) {
  CompileService Svc(testOptions());
  ServiceClient C(Svc);

  ClientResponse Ok = C.check(AcceptedSrc);
  EXPECT_TRUE(Ok.R.Ok);
  EXPECT_TRUE(Ok.R.Errors.empty());
  EXPECT_GE(Ok.R.LatencyMs, 0.0);

  ClientResponse Bad = C.check(RejectedSrc);
  EXPECT_FALSE(Bad.R.Ok);
  ASSERT_FALSE(Bad.R.Errors.empty());
  EXPECT_EQ(Bad.R.Errors[0].kind(), ErrorKind::Affine);
  EXPECT_EQ(Bad.R.Errors[0].loc().Line, 2u);

  ClientResponse Est = C.estimate(AcceptedSrc);
  ASSERT_TRUE(Est.R.Ok);
  ASSERT_TRUE(Est.R.Est.has_value());
  EXPECT_GT(Est.R.Est->Cycles, 0.0);
  EXPECT_GT(Est.R.Est->Lut, 0);

  ClientResponse Low = C.lower("decl O: bit<32>[1];\nO[0] := 7;");
  ASSERT_TRUE(Low.R.Ok);
  EXPECT_NE(Low.R.Lowered.find(":="), std::string::npos);

  ClientResponse ParseErr = C.check("let = garbage ;;;");
  EXPECT_FALSE(ParseErr.R.Ok);
  EXPECT_FALSE(ParseErr.R.Errors.empty());
}

TEST(Service, EstimateAgreesWithPipeline) {
  CompileService Svc(testOptions());
  ServiceClient C(Svc);
  std::string Src = kernels::gemmBlockedDahlia(kernels::GemmBlockedConfig());

  ClientResponse Est = C.estimate(Src);
  ASSERT_TRUE(Est.R.Ok);
  driver::CompileResult Ref = driver::CompilerPipeline().estimate(Src);
  ASSERT_TRUE(Ref.ok());
  EXPECT_DOUBLE_EQ(Est.R.Est->Cycles, Ref.Est->Cycles);
  EXPECT_EQ(Est.R.Est->Lut, Ref.Est->Lut);
}

TEST(Service, MemoCacheServesRepeatsIncludingRejections) {
  CompileService Svc(testOptions());
  ServiceClient C(Svc);

  EXPECT_FALSE(C.check(AcceptedSrc).R.Cached);
  ClientResponse Hit = C.check(AcceptedSrc);
  EXPECT_TRUE(Hit.R.Ok);
  EXPECT_TRUE(Hit.R.Cached);

  ClientResponse Miss = C.check(RejectedSrc);
  EXPECT_FALSE(Miss.R.Cached);
  std::string FirstMsg = Miss.R.Errors.at(0).message();
  ClientResponse RejHit = C.check(RejectedSrc);
  EXPECT_FALSE(RejHit.R.Ok);
  EXPECT_TRUE(RejHit.R.Cached);
  ASSERT_FALSE(RejHit.R.Errors.empty());
  EXPECT_EQ(RejHit.R.Errors.at(0).message(), FirstMsg);

  EXPECT_FALSE(C.estimate(AcceptedSrc).R.Cached); // First estimate computes...
  EXPECT_TRUE(C.estimate(AcceptedSrc).R.Cached);  // ...repeat is served.

  EXPECT_EQ(Svc.stats().CacheHits, 3u);
  EXPECT_GT(Svc.stats().cacheHitRate(), 0.0);
}

TEST(Service, BatchAnswersInRequestOrder) {
  CompileService Svc(testOptions());
  ServiceClient C(Svc);

  std::vector<Request> Batch;
  for (int I = 0; I != 20; ++I) {
    Request R;
    R.Kind = Op::Check;
    R.Source = I % 3 == 0 ? RejectedSrc : AcceptedSrc;
    Batch.push_back(R);
  }
  std::vector<ClientResponse> Rs = C.callBatch(Batch);
  ASSERT_EQ(Rs.size(), 20u);
  for (int I = 0; I != 20; ++I)
    EXPECT_EQ(Rs[I].R.Ok, I % 3 != 0) << I;
  EXPECT_EQ(Svc.stats().Requests, 20u);
  EXPECT_GE(Svc.stats().Epochs, 1u);
}

TEST(Service, MalformedLinesGetErrorResponsesNotTeardown) {
  CompileService Svc(testOptions());
  std::vector<Response> Rs = Svc.processBatch({
      R"({"id":7,"op":"check","source":"decl A: float[4]; A[0] := 1.0;"})",
      "garbage",
      R"({"id":9,"op":"nope","source":"x"})",
  });
  ASSERT_EQ(Rs.size(), 3u);
  EXPECT_TRUE(Rs[0].Ok);
  EXPECT_EQ(Rs[0].Id, 7);
  EXPECT_FALSE(Rs[1].Ok);
  EXPECT_FALSE(Rs[2].Ok);
  EXPECT_EQ(Rs[2].Id, 9); // Id salvaged from valid JSON with a bad op.
  EXPECT_EQ(Svc.stats().Malformed, 2u);
}

TEST(Service, SessionRewritesAgreeWithFullRecompiles) {
  CompileService Svc(testOptions());
  ServiceClient C(Svc);

  // Establish the session with the U=4/B=4 variant.
  ASSERT_TRUE(C.check(AcceptedSrc, "s").R.Ok);

  // Sweep bank/unroll combinations through the session and compare each
  // verdict against the pipeline on equivalent full source.
  for (int64_t Bank : {1, 2, 4, 8}) {
    for (int64_t Unroll : {1, 2, 4, 8}) {
      Rewrite Rw;
      Rw.Banks["A"] = {Bank};
      Rw.Unrolls["i"] = Unroll;
      ClientResponse Got = C.recheck("s", Rw);

      std::ostringstream Src;
      Src << "decl A: float[8 bank " << Bank << "];\n"
          << "for (let i = 0..8) unroll " << Unroll
          << " { A[i] := 1.0; }\n";
      bool Want = driver::checksSource(Src.str());
      EXPECT_EQ(Got.R.Ok, Want) << "bank " << Bank << " unroll " << Unroll;
      EXPECT_TRUE(Got.R.ParseReused || Got.R.Cached)
          << "bank " << Bank << " unroll " << Unroll;
    }
  }
  EXPECT_GT(Svc.stats().ParseReuses, 0u);

  // Unknown names surface as errors rather than silent no-ops.
  Rewrite BadMem;
  BadMem.Banks["Z"] = {2};
  EXPECT_FALSE(C.recheck("s", BadMem).R.Ok);
  Rewrite BadIter;
  BadIter.Unrolls["nope"] = 2;
  EXPECT_FALSE(C.recheck("s", BadIter).R.Ok);
  Rewrite BadArity;
  BadArity.Banks["A"] = {2, 2};
  EXPECT_FALSE(C.recheck("s", BadArity).R.Ok);
  EXPECT_FALSE(C.recheck("missing-session", BadMem).R.Ok);
}

TEST(Service, SessionRewriteEstimatesMatchFullSource) {
  CompileService Svc(testOptions());
  ServiceClient C(Svc);
  ASSERT_TRUE(C.check(AcceptedSrc, "s").R.Ok);

  Rewrite Rw;
  Rw.Banks["A"] = {2};
  Rw.Unrolls["i"] = 2;
  Request R;
  R.Kind = Op::Estimate;
  R.Session = "s";
  R.Rw = Rw;
  ClientResponse Got = C.call(R);
  ASSERT_TRUE(Got.R.Ok);
  ASSERT_TRUE(Got.R.Est.has_value());

  driver::CompileResult Ref = driver::CompilerPipeline().estimate(
      "decl A: float[8 bank 2];\nfor (let i = 0..8) unroll 2 "
      "{ A[i] := 1.0; }\n");
  ASSERT_TRUE(Ref.ok()) << Ref.firstError();
  EXPECT_DOUBLE_EQ(Got.R.Est->Cycles, Ref.Est->Cycles);
  EXPECT_EQ(Got.R.Est->Lut, Ref.Est->Lut);
}

TEST(Service, SimulateOpReturnsExactEstimateAndBreakdown) {
  CompileService Svc(testOptions());
  ServiceClient C(Svc);

  Request R;
  R.Kind = Op::Simulate;
  R.Source = AcceptedSrc;
  ClientResponse Got = C.call(R);
  ASSERT_TRUE(Got.R.Ok);
  ASSERT_TRUE(Got.R.Est.has_value());
  ASSERT_TRUE(Got.R.Sim.has_value());
  // The op returns the Exact-rung estimate: its cycles are the simulated
  // schedule's, and the per-nest breakdown ships alongside.
  EXPECT_EQ(Got.R.Est->Cycles, Got.R.Sim->Cycles);
  ASSERT_FALSE(Got.R.Sim->Nests.empty());
  EXPECT_GE(Got.R.Sim->Nests[0].Groups, 1.0);

  // Matches the pipeline's Simulate stage on the same source.
  driver::CompileResult Ref = driver::CompilerPipeline().simulate(AcceptedSrc);
  ASSERT_TRUE(Ref.ok()) << Ref.firstError();
  EXPECT_EQ(Got.R.Sim->Cycles, Ref.Sim->Cycles);
  EXPECT_EQ(Got.R.Sim->II, Ref.Sim->II);

  // A repeat serves the Exact estimate from the shared spec-keyed cache.
  ClientResponse Again = C.call(R);
  ASSERT_TRUE(Again.R.Ok);
  EXPECT_TRUE(Again.R.Cached);
  EXPECT_EQ(Again.R.Est->Cycles, Got.R.Est->Cycles);

  // The wire form carries the breakdown.
  Json J = Got.R.toJson();
  ASSERT_TRUE(J.at("sim").isObject());
  EXPECT_EQ(J.at("sim").at("cycles").asDouble(), Got.R.Sim->Cycles);
}

TEST(Service, DseSweepMatchesEngine) {
  CompileService Svc(testOptions());
  ServiceClient C(Svc);

  ClientResponse S = C.dseSweep("gemm-blocked", /*Limit=*/200, /*Threads=*/2);
  ASSERT_TRUE(S.R.Ok);
  EXPECT_EQ(S.R.Sweep.at("explored").asInt(), 200);

  dse::DseProblem P = kernels::gemmBlockedProblem();
  P.Size = 200;
  dse::DseResult Ref = dse::DseEngine().explore(P);
  EXPECT_EQ(S.R.Sweep.at("accepted").asInt(),
            static_cast<int64_t>(Ref.Stats.Accepted));
  EXPECT_EQ(S.R.Sweep.at("pareto_points").asInt(),
            static_cast<int64_t>(Ref.Front.size()));

  EXPECT_FALSE(C.dseSweep("no-such-space", 10).R.Ok);
}

TEST(Service, DseSweepStrategiesAndShardsMergeExactly) {
  CompileService Svc(testOptions());
  ServiceClient C(Svc);

  auto Sweep = [&](const std::string &Strategy, const std::string &Shard) {
    Request R;
    R.Kind = Op::DseSweep;
    R.Space = "gemm-blocked";
    R.Limit = 400;
    R.Threads = 2;
    R.Strategy = Strategy;
    R.Shard = Shard;
    return C.call(R);
  };

  ClientResponse Whole = Sweep("exhaustive", "");
  ASSERT_TRUE(Whole.R.Ok);
  std::string WholeFront = Whole.R.Sweep.at("front").dump();
  std::string WholeHash = Whole.R.Sweep.at("front_hash").asString();
  EXPECT_FALSE(WholeHash.empty());
  // Unsharded sweeps carry no merge payload.
  EXPECT_FALSE(Whole.R.Sweep.contains("front_points"));

  // A pruned sweep reports the identical front with fewer full estimates.
  ClientResponse Halved = Sweep("halving", "");
  ASSERT_TRUE(Halved.R.Ok);
  EXPECT_EQ(Halved.R.Sweep.at("front").dump(), WholeFront);
  EXPECT_EQ(Halved.R.Sweep.at("front_hash").asString(), WholeHash);
  EXPECT_LT(Halved.R.Sweep.at("estimated").asInt(),
            Whole.R.Sweep.at("estimated").asInt());
  EXPECT_GT(Halved.R.Sweep.at("pruned").asInt(), 0);

  // Three sharded sweeps union back into the whole-space membership.
  std::vector<dse::FrontPoint> Points;
  int64_t Explored = 0;
  for (unsigned S = 0; S != 3; ++S) {
    ClientResponse Part = Sweep("exhaustive", std::to_string(S) + "/3");
    ASSERT_TRUE(Part.R.Ok);
    EXPECT_EQ(Part.R.Sweep.at("shard_index").asInt(),
              static_cast<int64_t>(S));
    Explored += Part.R.Sweep.at("explored").asInt();
    ASSERT_TRUE(Part.R.Sweep.contains("front_points"));
    std::string Err;
    std::optional<std::vector<dse::FrontPoint>> FP =
        dse::frontPointsFromJson(Part.R.Sweep.at("front_points"), &Err);
    ASSERT_TRUE(FP) << Err;
    Points.insert(Points.end(), FP->begin(), FP->end());
  }
  EXPECT_EQ(Explored, 400);
  dse::MergedFronts M = dse::mergeFrontPoints(Points);
  EXPECT_EQ(dse::indicesToJson(M.Front).dump(), WholeFront);

  // Malformed strategy/shard fields answer with structured errors.
  EXPECT_FALSE(Sweep("bayesian", "").R.Ok);
  EXPECT_FALSE(Sweep("", "3/3").R.Ok);
}

TEST(Service, ServeStreamSpeaksTheLineProtocol) {
  CompileService Svc(testOptions());
  std::istringstream In(
      R"({"id":1,"op":"check","source":"decl A: float[4]; A[0] := 1.0;"})"
      "\n\n" // Blank line: epoch flush.
      R"({"id":2,"op":"check","source":"decl A: float[4]; A[0] := 1.0;"})"
      "\n");
  std::ostringstream Out;
  Svc.serveStream(In, Out);

  std::istringstream Lines(Out.str());
  std::string L1, L2;
  ASSERT_TRUE(std::getline(Lines, L1));
  ASSERT_TRUE(std::getline(Lines, L2));
  ClientResponse R1 = decodeResponse(L1), R2 = decodeResponse(L2);
  EXPECT_EQ(R1.R.Id, 1);
  EXPECT_TRUE(R1.R.Ok);
  EXPECT_EQ(R2.R.Id, 2);
  EXPECT_TRUE(R2.R.Ok);
  EXPECT_TRUE(R2.R.Cached); // Second epoch hits the first epoch's memo.
  EXPECT_EQ(Svc.stats().Epochs, 2u);
}

TEST(Service, RestartOverCacheDirStartsWarm) {
  std::string Dir =
      (fs::temp_directory_path() / "dahlia-service-test-cache").string();
  fs::remove_all(Dir);

  ServiceOptions O = testOptions();
  O.CacheDir = Dir;
  {
    CompileService Svc(O);
    ServiceClient C(Svc);
    EXPECT_FALSE(Svc.stats().WarmStart);
    C.check(AcceptedSrc);
    C.check(RejectedSrc);
    C.estimate(AcceptedSrc);
  } // Destructor persists the cache.

  {
    CompileService Svc(O);
    ServiceClient C(Svc);
    EXPECT_TRUE(Svc.stats().WarmStart);
    EXPECT_GT(Svc.stats().WarmVerdicts, 0u);
    // Accepted verdicts and estimates are served straight from disk.
    EXPECT_TRUE(C.check(AcceptedSrc).R.Cached);
    EXPECT_TRUE(C.estimate(AcceptedSrc).R.Cached);
    // A rejection's diagnostics do not survive the restart; the first
    // replay recomputes them, the second is served.
    ClientResponse First = C.check(RejectedSrc);
    EXPECT_FALSE(First.R.Ok);
    ASSERT_FALSE(First.R.Errors.empty());
    ClientResponse Second = C.check(RejectedSrc);
    EXPECT_TRUE(Second.R.Cached);
  }
  fs::remove_all(Dir);
}

} // namespace
