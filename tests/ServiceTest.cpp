//===- ServiceTest.cpp - Compile service and protocol tests -----*- C++ -*-===//
//
// Part of dahlia-cpp, a reproduction of "Predictable Accelerator Design with
// Time-Sensitive Affine Types" (PLDI 2020).
//
// The service contract: the JSON wire format round-trips; batches answer
// in request order with per-request latencies; the memo cache serves
// repeats (including rejections, with their diagnostics); sessions reuse
// the parse across bank/unroll rewrites and agree with full re-compiles;
// dse-sweep requests match the engine run directly; and a service restart
// over a cache directory starts warm.
//
// The concurrent layer's contract (TcpServer): eight parallel TCP clients
// mixing check/estimate/dse-sweep each get their own responses intact;
// streamed dse-sweep/simulate responses reassemble byte-identically to
// the batch form; and a slow reader's buffered output is bounded by the
// back-pressure cap without stalling the other clients.
//
//===----------------------------------------------------------------------===//

#include "service/ServiceClient.h"

#include "driver/CompilerPipeline.h"
#include "dse/SearchStrategy.h"
#include "fuzz/ProtoFuzz.h"
#include "kernels/Kernels.h"
#include "service/TcpServer.h"
#include "support/Socket.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <sstream>
#include <thread>

using namespace dahlia;
using namespace dahlia::service;

namespace fs = std::filesystem;

namespace {

const char *AcceptedSrc = "decl A: float[8 bank 4];\n"
                          "for (let i = 0..8) unroll 4 { A[i] := 1.0; }\n";
const char *RejectedSrc = "decl A: float[10];\n"
                          "let x = A[0]; A[1] := 1.0;\n";

//===----------------------------------------------------------------------===//
// Json
//===----------------------------------------------------------------------===//

TEST(Json, ParseDumpRoundTrip) {
  const char *Text =
      R"({"a":[1,2.5,true,null,"x\n\"y\""],"b":{"c":-7},"d":""})";
  std::string Err;
  auto J = Json::parse(Text, &Err);
  ASSERT_TRUE(J.has_value()) << Err;
  EXPECT_EQ(J->at("a").size(), 5u);
  EXPECT_EQ(J->at("a").asArray()[0].asInt(), 1);
  EXPECT_DOUBLE_EQ(J->at("a").asArray()[1].asDouble(), 2.5);
  EXPECT_TRUE(J->at("a").asArray()[2].asBool());
  EXPECT_TRUE(J->at("a").asArray()[3].isNull());
  EXPECT_EQ(J->at("a").asArray()[4].asString(), "x\n\"y\"");
  EXPECT_EQ(J->at("b").at("c").asInt(), -7);

  // dump -> parse -> dump is a fixed point (keys are sorted).
  std::string Dumped = J->dump();
  auto Again = Json::parse(Dumped, &Err);
  ASSERT_TRUE(Again.has_value()) << Err;
  EXPECT_EQ(Again->dump(), Dumped);
}

TEST(Json, RejectsMalformedInput) {
  for (const char *Bad : {"", "{", "[1,", "{\"a\":}", "tru", "\"unterm",
                          "{\"a\":1}trailing", "nan", "01x"})
    EXPECT_FALSE(Json::parse(Bad).has_value()) << Bad;
}

TEST(Json, IntegersRoundTripExactly) {
  int64_t Big = 9007199254740993; // 2^53 + 1: not representable as double.
  Json J = Json::object();
  J["v"] = Big;
  auto Back = Json::parse(J.dump());
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->at("v").asInt(), Big);
}

//===----------------------------------------------------------------------===//
// Protocol
//===----------------------------------------------------------------------===//

TEST(Protocol, RequestRoundTrip) {
  Request R;
  R.Id = 42;
  R.Kind = Op::Check;
  R.Session = "s1";
  Rewrite Rw;
  Rw.Banks["A"] = {2, 4};
  Rw.Unrolls["i"] = 4;
  R.Rw = Rw;

  std::string Err;
  auto Back = Request::fromJson(R.toJson().dump(), &Err);
  ASSERT_TRUE(Back.has_value()) << Err;
  EXPECT_EQ(Back->Id, 42);
  EXPECT_EQ(Back->Session, "s1");
  ASSERT_TRUE(Back->Rw.has_value());
  EXPECT_EQ(Back->Rw->Banks.at("A"), (std::vector<int64_t>{2, 4}));
  EXPECT_EQ(Back->Rw->Unrolls.at("i"), 4);
}

TEST(Protocol, RejectsInvalidRequests) {
  std::string Err;
  EXPECT_FALSE(Request::fromJson("not json", &Err).has_value());
  EXPECT_FALSE(Request::fromJson("[1,2]", &Err).has_value());
  EXPECT_FALSE(
      Request::fromJson(R"({"id":1,"op":"frobnicate","source":"x"})", &Err)
          .has_value());
  EXPECT_FALSE(Request::fromJson(R"({"id":1,"op":"check"})", &Err)
                   .has_value()); // no source
  EXPECT_FALSE(Request::fromJson(R"({"id":1,"op":"dse-sweep"})", &Err)
                   .has_value()); // no space
  // A thread/limit request outside sane bounds must not reach the worker
  // pool (a negative value would otherwise wrap to a huge unsigned).
  EXPECT_FALSE(
      Request::fromJson(
          R"({"id":1,"op":"dse-sweep","space":"gemm-blocked","threads":-1})",
          &Err)
          .has_value());
  EXPECT_FALSE(
      Request::fromJson(
          R"({"id":1,"op":"dse-sweep","space":"gemm-blocked","limit":-5})",
          &Err)
          .has_value());
  // source + rewrite is ambiguous; the client must pick one.
  EXPECT_FALSE(
      Request::fromJson(
          R"({"id":1,"op":"check","session":"s","source":"x","rewrite":{}})",
          &Err)
          .has_value());
}

//===----------------------------------------------------------------------===//
// CompileService
//===----------------------------------------------------------------------===//

ServiceOptions testOptions() {
  ServiceOptions O;
  O.Threads = 2;
  O.MaxBatch = 8;
  return O; // No cache dir: persistence is tested separately.
}

TEST(Service, CheckEstimateLowerAnswer) {
  CompileService Svc(testOptions());
  ServiceClient C(Svc);

  ClientResponse Ok = C.check(AcceptedSrc);
  EXPECT_TRUE(Ok.R.Ok);
  EXPECT_TRUE(Ok.R.Errors.empty());
  EXPECT_GE(Ok.R.LatencyMs, 0.0);

  ClientResponse Bad = C.check(RejectedSrc);
  EXPECT_FALSE(Bad.R.Ok);
  ASSERT_FALSE(Bad.R.Errors.empty());
  EXPECT_EQ(Bad.R.Errors[0].kind(), ErrorKind::Affine);
  EXPECT_EQ(Bad.R.Errors[0].loc().Line, 2u);

  ClientResponse Est = C.estimate(AcceptedSrc);
  ASSERT_TRUE(Est.R.Ok);
  ASSERT_TRUE(Est.R.Est.has_value());
  EXPECT_GT(Est.R.Est->Cycles, 0.0);
  EXPECT_GT(Est.R.Est->Lut, 0);

  ClientResponse Low = C.lower("decl O: bit<32>[1];\nO[0] := 7;");
  ASSERT_TRUE(Low.R.Ok);
  EXPECT_NE(Low.R.Lowered.find(":="), std::string::npos);

  ClientResponse ParseErr = C.check("let = garbage ;;;");
  EXPECT_FALSE(ParseErr.R.Ok);
  EXPECT_FALSE(ParseErr.R.Errors.empty());
}

TEST(Service, EstimateAgreesWithPipeline) {
  CompileService Svc(testOptions());
  ServiceClient C(Svc);
  std::string Src = kernels::gemmBlockedDahlia(kernels::GemmBlockedConfig());

  ClientResponse Est = C.estimate(Src);
  ASSERT_TRUE(Est.R.Ok);
  driver::CompileResult Ref = driver::CompilerPipeline().estimate(Src);
  ASSERT_TRUE(Ref.ok());
  EXPECT_DOUBLE_EQ(Est.R.Est->Cycles, Ref.Est->Cycles);
  EXPECT_EQ(Est.R.Est->Lut, Ref.Est->Lut);
}

TEST(Service, MemoCacheServesRepeatsIncludingRejections) {
  CompileService Svc(testOptions());
  ServiceClient C(Svc);

  EXPECT_FALSE(C.check(AcceptedSrc).R.Cached);
  ClientResponse Hit = C.check(AcceptedSrc);
  EXPECT_TRUE(Hit.R.Ok);
  EXPECT_TRUE(Hit.R.Cached);

  ClientResponse Miss = C.check(RejectedSrc);
  EXPECT_FALSE(Miss.R.Cached);
  std::string FirstMsg = Miss.R.Errors.at(0).message();
  ClientResponse RejHit = C.check(RejectedSrc);
  EXPECT_FALSE(RejHit.R.Ok);
  EXPECT_TRUE(RejHit.R.Cached);
  ASSERT_FALSE(RejHit.R.Errors.empty());
  EXPECT_EQ(RejHit.R.Errors.at(0).message(), FirstMsg);

  EXPECT_FALSE(C.estimate(AcceptedSrc).R.Cached); // First estimate computes...
  EXPECT_TRUE(C.estimate(AcceptedSrc).R.Cached);  // ...repeat is served.

  EXPECT_EQ(Svc.stats().CacheHits, 3u);
  EXPECT_GT(Svc.stats().cacheHitRate(), 0.0);
}

TEST(Service, BatchAnswersInRequestOrder) {
  CompileService Svc(testOptions());
  ServiceClient C(Svc);

  std::vector<Request> Batch;
  for (int I = 0; I != 20; ++I) {
    Request R;
    R.Kind = Op::Check;
    R.Source = I % 3 == 0 ? RejectedSrc : AcceptedSrc;
    Batch.push_back(R);
  }
  std::vector<ClientResponse> Rs = C.callBatch(Batch);
  ASSERT_EQ(Rs.size(), 20u);
  for (int I = 0; I != 20; ++I)
    EXPECT_EQ(Rs[I].R.Ok, I % 3 != 0) << I;
  EXPECT_EQ(Svc.stats().Requests, 20u);
  EXPECT_GE(Svc.stats().Epochs, 1u);
}

TEST(Service, MalformedLinesGetErrorResponsesNotTeardown) {
  CompileService Svc(testOptions());
  std::vector<Response> Rs = Svc.processBatch({
      R"({"id":7,"op":"check","source":"decl A: float[4]; A[0] := 1.0;"})",
      "garbage",
      R"({"id":9,"op":"nope","source":"x"})",
  });
  ASSERT_EQ(Rs.size(), 3u);
  EXPECT_TRUE(Rs[0].Ok);
  EXPECT_EQ(Rs[0].Id, 7);
  EXPECT_FALSE(Rs[1].Ok);
  EXPECT_FALSE(Rs[2].Ok);
  EXPECT_EQ(Rs[2].Id, 9); // Id salvaged from valid JSON with a bad op.
  EXPECT_EQ(Svc.stats().Malformed, 2u);
}

TEST(Service, SessionRewritesAgreeWithFullRecompiles) {
  CompileService Svc(testOptions());
  ServiceClient C(Svc);

  // Establish the session with the U=4/B=4 variant.
  ASSERT_TRUE(C.check(AcceptedSrc, "s").R.Ok);

  // Sweep bank/unroll combinations through the session and compare each
  // verdict against the pipeline on equivalent full source.
  for (int64_t Bank : {1, 2, 4, 8}) {
    for (int64_t Unroll : {1, 2, 4, 8}) {
      Rewrite Rw;
      Rw.Banks["A"] = {Bank};
      Rw.Unrolls["i"] = Unroll;
      ClientResponse Got = C.recheck("s", Rw);

      std::ostringstream Src;
      Src << "decl A: float[8 bank " << Bank << "];\n"
          << "for (let i = 0..8) unroll " << Unroll
          << " { A[i] := 1.0; }\n";
      bool Want = driver::checksSource(Src.str());
      EXPECT_EQ(Got.R.Ok, Want) << "bank " << Bank << " unroll " << Unroll;
      EXPECT_TRUE(Got.R.ParseReused || Got.R.Cached)
          << "bank " << Bank << " unroll " << Unroll;
    }
  }
  EXPECT_GT(Svc.stats().ParseReuses, 0u);

  // Unknown names surface as errors rather than silent no-ops.
  Rewrite BadMem;
  BadMem.Banks["Z"] = {2};
  EXPECT_FALSE(C.recheck("s", BadMem).R.Ok);
  Rewrite BadIter;
  BadIter.Unrolls["nope"] = 2;
  EXPECT_FALSE(C.recheck("s", BadIter).R.Ok);
  Rewrite BadArity;
  BadArity.Banks["A"] = {2, 2};
  EXPECT_FALSE(C.recheck("s", BadArity).R.Ok);
  EXPECT_FALSE(C.recheck("missing-session", BadMem).R.Ok);
}

TEST(Service, SessionRewriteEstimatesMatchFullSource) {
  CompileService Svc(testOptions());
  ServiceClient C(Svc);
  ASSERT_TRUE(C.check(AcceptedSrc, "s").R.Ok);

  Rewrite Rw;
  Rw.Banks["A"] = {2};
  Rw.Unrolls["i"] = 2;
  Request R;
  R.Kind = Op::Estimate;
  R.Session = "s";
  R.Rw = Rw;
  ClientResponse Got = C.call(R);
  ASSERT_TRUE(Got.R.Ok);
  ASSERT_TRUE(Got.R.Est.has_value());

  driver::CompileResult Ref = driver::CompilerPipeline().estimate(
      "decl A: float[8 bank 2];\nfor (let i = 0..8) unroll 2 "
      "{ A[i] := 1.0; }\n");
  ASSERT_TRUE(Ref.ok()) << Ref.firstError();
  EXPECT_DOUBLE_EQ(Got.R.Est->Cycles, Ref.Est->Cycles);
  EXPECT_EQ(Got.R.Est->Lut, Ref.Est->Lut);
}

TEST(Service, SimulateOpReturnsExactEstimateAndBreakdown) {
  CompileService Svc(testOptions());
  ServiceClient C(Svc);

  Request R;
  R.Kind = Op::Simulate;
  R.Source = AcceptedSrc;
  ClientResponse Got = C.call(R);
  ASSERT_TRUE(Got.R.Ok);
  ASSERT_TRUE(Got.R.Est.has_value());
  ASSERT_TRUE(Got.R.Sim.has_value());
  // The op returns the Exact-rung estimate: its cycles are the simulated
  // schedule's, and the per-nest breakdown ships alongside.
  EXPECT_EQ(Got.R.Est->Cycles, Got.R.Sim->Cycles);
  ASSERT_FALSE(Got.R.Sim->Nests.empty());
  EXPECT_GE(Got.R.Sim->Nests[0].Groups, 1.0);

  // Matches the pipeline's Simulate stage on the same source.
  driver::CompileResult Ref = driver::CompilerPipeline().simulate(AcceptedSrc);
  ASSERT_TRUE(Ref.ok()) << Ref.firstError();
  EXPECT_EQ(Got.R.Sim->Cycles, Ref.Sim->Cycles);
  EXPECT_EQ(Got.R.Sim->II, Ref.Sim->II);

  // A repeat serves the Exact estimate from the shared spec-keyed cache.
  ClientResponse Again = C.call(R);
  ASSERT_TRUE(Again.R.Ok);
  EXPECT_TRUE(Again.R.Cached);
  EXPECT_EQ(Again.R.Est->Cycles, Got.R.Est->Cycles);

  // The wire form carries the breakdown.
  Json J = Got.R.toJson();
  ASSERT_TRUE(J.at("sim").isObject());
  EXPECT_EQ(J.at("sim").at("cycles").asDouble(), Got.R.Sim->Cycles);
}

TEST(Service, DseSweepMatchesEngine) {
  CompileService Svc(testOptions());
  ServiceClient C(Svc);

  ClientResponse S = C.dseSweep("gemm-blocked", /*Limit=*/200, /*Threads=*/2);
  ASSERT_TRUE(S.R.Ok);
  EXPECT_EQ(S.R.Sweep.at("explored").asInt(), 200);

  dse::DseProblem P = kernels::gemmBlockedProblem();
  P.Size = 200;
  dse::DseResult Ref = dse::DseEngine().explore(P);
  EXPECT_EQ(S.R.Sweep.at("accepted").asInt(),
            static_cast<int64_t>(Ref.Stats.Accepted));
  EXPECT_EQ(S.R.Sweep.at("pareto_points").asInt(),
            static_cast<int64_t>(Ref.Front.size()));

  EXPECT_FALSE(C.dseSweep("no-such-space", 10).R.Ok);
}

TEST(Service, DseSweepStrategiesAndShardsMergeExactly) {
  CompileService Svc(testOptions());
  ServiceClient C(Svc);

  auto Sweep = [&](const std::string &Strategy, const std::string &Shard) {
    Request R;
    R.Kind = Op::DseSweep;
    R.Space = "gemm-blocked";
    R.Limit = 400;
    R.Threads = 2;
    R.Strategy = Strategy;
    R.Shard = Shard;
    return C.call(R);
  };

  ClientResponse Whole = Sweep("exhaustive", "");
  ASSERT_TRUE(Whole.R.Ok);
  std::string WholeFront = Whole.R.Sweep.at("front").dump();
  std::string WholeHash = Whole.R.Sweep.at("front_hash").asString();
  EXPECT_FALSE(WholeHash.empty());
  // Unsharded sweeps carry no merge payload.
  EXPECT_FALSE(Whole.R.Sweep.contains("front_points"));

  // A pruned sweep reports the identical front with fewer full estimates.
  ClientResponse Halved = Sweep("halving", "");
  ASSERT_TRUE(Halved.R.Ok);
  EXPECT_EQ(Halved.R.Sweep.at("front").dump(), WholeFront);
  EXPECT_EQ(Halved.R.Sweep.at("front_hash").asString(), WholeHash);
  EXPECT_LT(Halved.R.Sweep.at("estimated").asInt(),
            Whole.R.Sweep.at("estimated").asInt());
  EXPECT_GT(Halved.R.Sweep.at("pruned").asInt(), 0);

  // Three sharded sweeps union back into the whole-space membership.
  std::vector<dse::FrontPoint> Points;
  int64_t Explored = 0;
  for (unsigned S = 0; S != 3; ++S) {
    ClientResponse Part = Sweep("exhaustive", std::to_string(S) + "/3");
    ASSERT_TRUE(Part.R.Ok);
    EXPECT_EQ(Part.R.Sweep.at("shard_index").asInt(),
              static_cast<int64_t>(S));
    Explored += Part.R.Sweep.at("explored").asInt();
    ASSERT_TRUE(Part.R.Sweep.contains("front_points"));
    std::string Err;
    std::optional<std::vector<dse::FrontPoint>> FP =
        dse::frontPointsFromJson(Part.R.Sweep.at("front_points"), &Err);
    ASSERT_TRUE(FP) << Err;
    Points.insert(Points.end(), FP->begin(), FP->end());
  }
  EXPECT_EQ(Explored, 400);
  dse::MergedFronts M = dse::mergeFrontPoints(Points);
  EXPECT_EQ(dse::indicesToJson(M.Front).dump(), WholeFront);

  // Malformed strategy/shard fields answer with structured errors.
  EXPECT_FALSE(Sweep("bayesian", "").R.Ok);
  EXPECT_FALSE(Sweep("", "3/3").R.Ok);
}

TEST(Service, ServeStreamSpeaksTheLineProtocol) {
  CompileService Svc(testOptions());
  std::istringstream In(
      R"({"id":1,"op":"check","source":"decl A: float[4]; A[0] := 1.0;"})"
      "\n\n" // Blank line: epoch flush.
      R"({"id":2,"op":"check","source":"decl A: float[4]; A[0] := 1.0;"})"
      "\n");
  std::ostringstream Out;
  Svc.serveStream(In, Out);

  std::istringstream Lines(Out.str());
  std::string L1, L2;
  ASSERT_TRUE(std::getline(Lines, L1));
  ASSERT_TRUE(std::getline(Lines, L2));
  ClientResponse R1 = decodeResponse(L1), R2 = decodeResponse(L2);
  EXPECT_EQ(R1.R.Id, 1);
  EXPECT_TRUE(R1.R.Ok);
  EXPECT_EQ(R2.R.Id, 2);
  EXPECT_TRUE(R2.R.Ok);
  EXPECT_TRUE(R2.R.Cached); // Second epoch hits the first epoch's memo.
  EXPECT_EQ(Svc.stats().Epochs, 2u);
}

TEST(Client, SurfacesServerMessageOnMalformedResponses) {
  // Not JSON at all: the snippet rides along instead of a bare
  // "unparseable".
  ClientResponse NotJson = decodeResponse("half a {respon");
  EXPECT_FALSE(NotJson.R.Ok);
  ASSERT_FALSE(NotJson.R.Errors.empty());
  EXPECT_NE(NotJson.R.Errors[0].message().find("half a {respon"),
            std::string::npos);

  // Valid JSON that is not a protocol response but carries the server's
  // structured errors: the message field surfaces verbatim.
  ClientResponse WithErrors = decodeResponse(
      R"({"errors":[{"kind":"internal","message":"cache shard offline"}]})");
  EXPECT_FALSE(WithErrors.R.Ok);
  ASSERT_FALSE(WithErrors.R.Errors.empty());
  EXPECT_NE(WithErrors.R.Errors[0].message().find("cache shard offline"),
            std::string::npos);

  // Bare message / error fields surface too.
  for (const char *Line :
       {R"({"message":"server overloaded"})", R"({"error":"server overloaded"})",
        R"({"error":{"message":"server overloaded"}})"}) {
    ClientResponse C = decodeResponse(Line);
    EXPECT_FALSE(C.R.Ok) << Line;
    ASSERT_FALSE(C.R.Errors.empty()) << Line;
    EXPECT_NE(C.R.Errors[0].message().find("server overloaded"),
              std::string::npos)
        << Line;
  }

  // JSON with no message at all still names the defect, not "unparseable".
  ClientResponse Bare = decodeResponse(R"({"foo":1})");
  EXPECT_FALSE(Bare.R.Ok);
  ASSERT_FALSE(Bare.R.Errors.empty());
  EXPECT_NE(Bare.R.Errors[0].message().find("id/op/ok"), std::string::npos);

  // A well-formed response still decodes as one (no regression).
  ClientResponse Good =
      decodeResponse(R"({"id":3,"op":"check","ok":true,"latency_ms":0.1})");
  EXPECT_TRUE(Good.R.Ok);
  EXPECT_TRUE(Good.R.Errors.empty());
}

/// The deterministic slice of a sweep summary: membership, hashes, and
/// shard bookkeeping (timing and cache-hit fields vary run to run).
std::string sweepFingerprint(const Json &Sweep) {
  return Sweep.at("space").dump() + "|" + Sweep.at("strategy").dump() + "|" +
         Sweep.at("shard_index").dump() + "/" + Sweep.at("shard_count").dump() +
         "|" + Sweep.at("explored").dump() + "|" + Sweep.at("accepted").dump() +
         "|" + Sweep.at("front").dump() + "|" +
         Sweep.at("accepted_front").dump() + "|" +
         Sweep.at("front_hash").dump() + "|" + Sweep.at("front_points").dump();
}

TEST(Service, StreamedResponsesReassembleByteIdentical) {
  CompileService Svc(testOptions());
  ServiceClient C(Svc);

  auto SweepReq = [](bool Stream, const std::string &Shard) {
    Request R;
    R.Kind = Op::DseSweep;
    R.Space = "gemm-blocked";
    R.Limit = 300;
    R.Threads = 2;
    R.Shard = Shard;
    R.Stream = Stream;
    return R;
  };

  // Sharded: the batch response carries front_points; the streamed form
  // ships them as chunks and must reassemble to the identical payload.
  ClientResponse Batch = C.call(SweepReq(false, "0/2"));
  ASSERT_TRUE(Batch.R.Ok);
  EXPECT_FALSE(Batch.Streamed);
  ClientResponse Streamed = C.call(SweepReq(true, "0/2"));
  ASSERT_TRUE(Streamed.R.Ok);
  EXPECT_TRUE(Streamed.Streamed);
  EXPECT_EQ(Streamed.StreamChunks,
            Batch.Raw.at("sweep").at("front_points").size());
  EXPECT_GT(Streamed.StreamChunks, 0u);
  EXPECT_EQ(sweepFingerprint(Streamed.Raw.at("sweep")),
            sweepFingerprint(Batch.Raw.at("sweep")));

  // Unsharded: the batch summary has no front_points; the streamed form
  // still chunks the front but reassembles to the same summary.
  ClientResponse B2 = C.call(SweepReq(false, ""));
  ClientResponse S2 = C.call(SweepReq(true, ""));
  ASSERT_TRUE(B2.R.Ok);
  ASSERT_TRUE(S2.R.Ok);
  EXPECT_TRUE(S2.Streamed);
  EXPECT_GT(S2.StreamChunks, 0u);
  EXPECT_FALSE(S2.Raw.at("sweep").contains("front_points"));
  EXPECT_EQ(sweepFingerprint(S2.Raw.at("sweep")),
            sweepFingerprint(B2.Raw.at("sweep")));

  // Simulate: per-nest chunks reassemble into the batch sim object.
  Request SimB;
  SimB.Kind = Op::Simulate;
  SimB.Source = AcceptedSrc;
  Request SimS = SimB;
  SimS.Stream = true;
  ClientResponse SimBatch = C.call(SimB);
  ClientResponse SimStream = C.call(SimS);
  ASSERT_TRUE(SimBatch.R.Ok);
  ASSERT_TRUE(SimStream.R.Ok);
  EXPECT_TRUE(SimStream.Streamed);
  EXPECT_EQ(SimStream.StreamChunks, SimBatch.Raw.at("sim").at("nests").size());
  EXPECT_EQ(SimStream.Raw.at("sim").dump(), SimBatch.Raw.at("sim").dump());
  ASSERT_TRUE(SimStream.R.Sim.has_value());
  EXPECT_EQ(SimStream.R.Sim->Cycles, SimBatch.R.Sim->Cycles);

  // Failed and non-streamable requests answer plain even when streaming
  // was requested.
  Request BadReq;
  BadReq.Kind = Op::DseSweep;
  BadReq.Space = "no-such-space";
  BadReq.Stream = true;
  ClientResponse Bad = C.call(BadReq);
  EXPECT_FALSE(Bad.R.Ok);
  EXPECT_FALSE(Bad.Streamed);
  ASSERT_FALSE(Bad.R.Errors.empty());
  Request Chk;
  Chk.Kind = Op::Check;
  Chk.Source = AcceptedSrc;
  Chk.Stream = true;
  ClientResponse Plain = C.call(Chk);
  EXPECT_TRUE(Plain.R.Ok);
  EXPECT_FALSE(Plain.Streamed);
}

//===----------------------------------------------------------------------===//
// TcpServer: concurrent clients, streaming, back-pressure
//===----------------------------------------------------------------------===//

TEST(TcpServer, EightParallelClientsKeepResponseIntegrity) {
  if (!haveSockets())
    GTEST_SKIP() << "no sockets on this platform";
  CompileService Svc(testOptions());
  TcpServer Srv(Svc);
  std::string Err;
  ASSERT_TRUE(Srv.start(&Err)) << Err;
  std::thread Loop([&] { Srv.run(); });

  driver::CompileResult Ref = driver::CompilerPipeline().estimate(AcceptedSrc);
  ASSERT_TRUE(Ref.ok());

  constexpr int NumClients = 8, Iters = 12;
  std::vector<std::thread> Clients;
  std::vector<std::string> Failures(NumClients);
  for (int T = 0; T != NumClients; ++T)
    Clients.emplace_back([&, T] {
      auto Fail = [&](const std::string &Msg) {
        if (Failures[T].empty())
          Failures[T] = Msg;
      };
      int Fd = connectLoopback(Srv.port());
      if (Fd < 0)
        return Fail("connect failed");
      {
        FdStreamBuf Buf(Fd);
        std::istream In(&Buf);
        std::ostream Out(&Buf);
        ServiceClient C(In, Out);
        for (int I = 0; I != Iters && Failures[T].empty(); ++I) {
          std::vector<Request> Batch;
          Request Chk;
          Chk.Kind = Op::Check;
          Chk.Source = AcceptedSrc;
          Batch.push_back(Chk);
          Request Rej;
          Rej.Kind = Op::Check;
          Rej.Source = RejectedSrc;
          Batch.push_back(Rej);
          Request Est;
          Est.Kind = Op::Estimate;
          Est.Source = AcceptedSrc;
          Batch.push_back(Est);
          bool WithSweep = I % 4 == T % 4;
          if (WithSweep) {
            Request Sw;
            Sw.Kind = Op::DseSweep;
            Sw.Space = "gemm-blocked";
            Sw.Limit = 120;
            Batch.push_back(Sw);
          }
          std::vector<ClientResponse> Rs = C.callBatch(Batch);
          if (Rs.size() != Batch.size())
            return Fail("short batch");
          if (!Rs[0].R.Ok || !Rs[0].R.Errors.empty())
            return Fail("check flipped");
          if (Rs[1].R.Ok || Rs[1].R.Errors.empty())
            return Fail("rejection flipped");
          if (!Rs[2].R.Ok || !Rs[2].R.Est ||
              Rs[2].R.Est->Cycles != Ref.Est->Cycles ||
              Rs[2].R.Est->Lut != Ref.Est->Lut)
            return Fail("estimate drifted");
          if (WithSweep &&
              (!Rs[3].R.Ok || Rs[3].R.Sweep.at("explored").asInt() != 120))
            return Fail("sweep drifted");
        }
      }
      closeFd(Fd);
    });
  for (std::thread &T : Clients)
    T.join();
  for (int T = 0; T != NumClients; ++T)
    EXPECT_EQ(Failures[T], "") << "client " << T;

  TcpServerStats St = Srv.stats();
  EXPECT_EQ(St.Accepted, static_cast<size_t>(NumClients));
  EXPECT_GE(St.RequestLines, static_cast<size_t>(NumClients * Iters * 3));
  EXPECT_GT(St.Epochs, 0u);
  // The whole point of the shared event loop: lines from different
  // clients coalesce into common epochs (8 clients hammering concurrently
  // make this overwhelmingly likely every run).
  EXPECT_GT(St.CoalescedEpochs, 0u);

  Srv.stop();
  Loop.join();
}

TEST(TcpServer, SlowStreamReaderIsBoundedAndDoesNotStallOthers) {
  if (!haveSockets())
    GTEST_SKIP() << "no sockets on this platform";
  CompileService Svc(testOptions());
  TcpServerOptions TO;
  TO.MaxWriteBuffer = 4096; // Small cap: back-pressure engages quickly.
  TO.SendBufferBytes = 4096; // Small kernel buffer: it cannot hide the cap.
  TcpServer Srv(Svc, TO);
  std::string Err;
  ASSERT_TRUE(Srv.start(&Err)) << Err;
  std::thread Loop([&] { Srv.run(); });

  auto SweepReq = [](int64_t Id, bool Stream) {
    Request R;
    R.Id = Id;
    R.Kind = Op::DseSweep;
    R.Space = "gemm-blocked";
    R.Limit = 400;
    R.Threads = 1;
    R.Shard = "0/2";
    R.Stream = Stream;
    return R;
  };

  // Reference: the batch response of the identical sweep, over TCP.
  Json RefSweep;
  {
    int Fd = connectLoopback(Srv.port());
    ASSERT_GE(Fd, 0);
    FdStreamBuf Buf(Fd);
    std::istream In(&Buf);
    std::ostream Out(&Buf);
    ServiceClient C(In, Out);
    ClientResponse Ref = C.call(SweepReq(0, false));
    ASSERT_TRUE(Ref.R.Ok);
    RefSweep = Ref.Raw.at("sweep");
    closeFd(Fd);
  }
  const std::string RefPoints = RefSweep.at("front_points").dump();
  const size_t RefPointCount = RefSweep.at("front_points").size();
  ASSERT_GT(RefPointCount, 0u);

  // The slow reader: pipeline 24 streamed copies of the sweep, then stop
  // touching the socket while everyone else works.
  constexpr int NumStreams = 24;
  int Slow = connectLoopback(Srv.port());
  ASSERT_GE(Slow, 0);
  FdStreamBuf SlowBuf(Slow);
  std::istream SlowIn(&SlowBuf);
  std::ostream SlowOut(&SlowBuf);
  for (int I = 0; I != NumStreams; ++I)
    SlowOut << SweepReq(I + 1, true).toJson().dump() << '\n';
  SlowOut << '\n';
  SlowOut.flush();

  // Give the server time to compute the sweeps and wedge the slow
  // connection's output against the cap.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // Four other clients run full workloads to completion while the slow
  // reader's responses sit queued: joining these threads is the liveness
  // assertion.
  constexpr int NumOthers = 4;
  std::vector<std::thread> Others;
  std::vector<std::string> Failures(NumOthers);
  for (int T = 0; T != NumOthers; ++T)
    Others.emplace_back([&, T] {
      int Fd = connectLoopback(Srv.port());
      if (Fd < 0) {
        Failures[T] = "connect failed";
        return;
      }
      {
        FdStreamBuf Buf(Fd);
        std::istream In(&Buf);
        std::ostream Out(&Buf);
        ServiceClient C(In, Out);
        for (int I = 0; I != 20 && Failures[T].empty(); ++I) {
          if (!C.check(AcceptedSrc).R.Ok)
            Failures[T] = "check failed";
          ClientResponse E = C.estimate(AcceptedSrc);
          if (!E.R.Ok || !E.R.Est)
            Failures[T] = "estimate failed";
        }
      }
      closeFd(Fd);
    });
  for (std::thread &T : Others)
    T.join();
  for (int T = 0; T != NumOthers; ++T)
    EXPECT_EQ(Failures[T], "") << "client " << T;

  // Now drain the slow connection: all 24 streams must arrive complete,
  // with the full Pareto front byte-identical to the batch response.
  std::map<int64_t, std::vector<Json>> ChunksById;
  std::map<int64_t, Json> TerminalById;
  int Headers = 0;
  std::string L;
  while (TerminalById.size() != NumStreams && std::getline(SlowIn, L)) {
    if (L.empty())
      continue;
    std::optional<Json> J = Json::parse(L);
    ASSERT_TRUE(J.has_value()) << L;
    int64_t Id = J->at("id").asInt();
    if (J->at("stream").asBool() && !J->contains("stream_end")) {
      ++Headers;
      continue;
    }
    if (J->contains("front_point")) {
      ChunksById[Id].push_back(J->at("front_point"));
      continue;
    }
    if (J->contains("stream_end"))
      TerminalById[Id] = *J;
  }
  EXPECT_EQ(Headers, NumStreams);
  ASSERT_EQ(TerminalById.size(), static_cast<size_t>(NumStreams));
  for (int I = 0; I != NumStreams; ++I) {
    int64_t Id = I + 1;
    Json Points = Json::array();
    for (const Json &P : ChunksById[Id])
      Points.push_back(P);
    EXPECT_EQ(Points.dump(), RefPoints) << "stream " << Id;
    const Json &Sweep = TerminalById[Id].at("sweep");
    EXPECT_EQ(Sweep.at("front").dump(), RefSweep.at("front").dump());
    EXPECT_EQ(Sweep.at("front_hash").dump(), RefSweep.at("front_hash").dump());
    EXPECT_FALSE(Sweep.contains("front_points")) << "terminal carries bulk";
  }
  closeFd(Slow);

  TcpServerStats St = Srv.stats();
  EXPECT_EQ(St.StreamedResponses, static_cast<size_t>(NumStreams));
  // The back-pressure invariant: buffered bytes never exceeded the cap
  // plus one protocol line, despite ~NumStreams responses pending — and
  // the cap was genuinely reached (the kernel buffers could not absorb
  // 24 sweep responses), so the bound was exercised, not idle.
  EXPECT_LE(St.PeakConnectionBufferedBytes, TO.MaxWriteBuffer + 4096u);
  EXPECT_GE(St.PeakConnectionBufferedBytes, TO.MaxWriteBuffer);

  Srv.stop();
  Loop.join();
}

TEST(Service, RestartOverCacheDirStartsWarm) {
  std::string Dir =
      (fs::temp_directory_path() / "dahlia-service-test-cache").string();
  fs::remove_all(Dir);

  ServiceOptions O = testOptions();
  O.CacheDir = Dir;
  {
    CompileService Svc(O);
    ServiceClient C(Svc);
    EXPECT_FALSE(Svc.stats().WarmStart);
    C.check(AcceptedSrc);
    C.check(RejectedSrc);
    C.estimate(AcceptedSrc);
  } // Destructor persists the cache.

  {
    CompileService Svc(O);
    ServiceClient C(Svc);
    EXPECT_TRUE(Svc.stats().WarmStart);
    EXPECT_GT(Svc.stats().WarmVerdicts, 0u);
    // Accepted verdicts and estimates are served straight from disk.
    EXPECT_TRUE(C.check(AcceptedSrc).R.Cached);
    EXPECT_TRUE(C.estimate(AcceptedSrc).R.Cached);
    // A rejection's diagnostics do not survive the restart; the first
    // replay recomputes them, the second is served.
    ClientResponse First = C.check(RejectedSrc);
    EXPECT_FALSE(First.R.Ok);
    ASSERT_FALSE(First.R.Errors.empty());
    ClientResponse Second = C.check(RejectedSrc);
    EXPECT_TRUE(Second.R.Cached);
  }
  fs::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Observability: the metrics op and request trace IDs
//===----------------------------------------------------------------------===//

/// The metrics registry is process-global, so these tests only assert on
/// before/after deltas — absolute values include every other test's work.
int64_t counterOf(const ClientResponse &M, const char *Name) {
  return M.R.Metrics.at("counters").at(Name).asInt();
}

TEST(Service, MetricsOpCountsRequestsAndWarmCacheHits) {
  CompileService Svc(testOptions());
  ServiceClient C(Svc);

  ClientResponse Before = C.metrics();
  ASSERT_TRUE(Before.R.Ok);
  ASSERT_TRUE(Before.R.Metrics.isObject());
  ASSERT_TRUE(Before.R.Metrics.at("counters").isObject());
  int64_t Requests0 = counterOf(Before, "service.requests");
  int64_t VerdictHits0 = counterOf(Before, "dse.memo.verdict_hits");
  int64_t HistCount0 = Before.R.Metrics.at("histograms")
                           .at("service.request_ms")
                           .at("count")
                           .asInt();

  EXPECT_TRUE(C.check(AcceptedSrc).R.Ok); // Cold: populates the memo.
  ClientResponse Warm = C.check(AcceptedSrc); // Warm repeat: a memo hit.
  EXPECT_TRUE(Warm.R.Ok);
  EXPECT_TRUE(Warm.R.Cached);

  ClientResponse After = C.metrics();
  ASSERT_TRUE(After.R.Ok);
  // The two checks plus the metrics ops themselves were counted...
  EXPECT_GE(counterOf(After, "service.requests"), Requests0 + 3);
  // ...the warm repeat moved the cache-hit counter...
  EXPECT_GT(counterOf(After, "dse.memo.verdict_hits"), VerdictHits0);
  // ...and each counted request recorded a latency sample.
  EXPECT_GE(After.R.Metrics.at("histograms")
                .at("service.request_ms")
                .at("count")
                .asInt(),
            HistCount0 + 3);
}

TEST(Service, TraceIdsEchoClientValuesAndStampFreshOnes) {
  CompileService Svc(testOptions());
  ServiceClient C(Svc);

  // A client-supplied trace ID is echoed back verbatim.
  Request R;
  R.Kind = Op::Check;
  R.Source = AcceptedSrc;
  R.TraceId = 987654;
  ClientResponse Echoed = C.call(std::move(R));
  EXPECT_TRUE(Echoed.R.Ok);
  EXPECT_EQ(Echoed.R.TraceId, 987654u);

  // Without one, the server stamps a fresh nonzero ID — distinct per
  // request, so a slow-request log line maps to exactly one request.
  ClientResponse A = C.check(AcceptedSrc);
  ClientResponse B = C.estimate(AcceptedSrc);
  EXPECT_NE(A.R.TraceId, 0u);
  EXPECT_NE(B.R.TraceId, 0u);
  EXPECT_NE(A.R.TraceId, B.R.TraceId);

  // The wire format round-trips it.
  std::string Err;
  auto Back = Request::fromJson(
      R"({"id":1,"op":"check","source":"x","trace_id":42})", &Err);
  ASSERT_TRUE(Back.has_value()) << Err;
  EXPECT_EQ(Back->TraceId, 42u);
  EXPECT_FALSE(
      Request::fromJson(
          R"({"id":1,"op":"check","source":"x","trace_id":-3})", &Err)
          .has_value()); // Negative IDs are rejected, not wrapped.
}

TEST(TcpServer, MetricsOpSeesCoalescedEpochsAndCacheHits) {
  if (!haveSockets())
    GTEST_SKIP() << "no sockets on this platform";
  CompileService Svc(testOptions());
  ServiceClient Local(Svc);
  ClientResponse Before = Local.metrics();
  ASSERT_TRUE(Before.R.Ok);
  int64_t Coalesced0 = counterOf(Before, "server.coalesced_epochs");
  int64_t VerdictHits0 = counterOf(Before, "dse.memo.verdict_hits");
  int64_t Accepted0 = counterOf(Before, "server.connections_accepted");

  TcpServer Srv(Svc);
  std::string Err;
  ASSERT_TRUE(Srv.start(&Err)) << Err;
  std::thread Loop([&] { Srv.run(); });

  // Warm the memo once so the hammer below is mostly cache hits.
  EXPECT_TRUE(Local.check(AcceptedSrc).R.Ok);

  constexpr int NumClients = 8, Iters = 20;
  std::vector<std::thread> Clients;
  std::atomic<int> Failures{0};
  for (int T = 0; T != NumClients; ++T)
    Clients.emplace_back([&] {
      int Fd = connectLoopback(Srv.port());
      if (Fd < 0) {
        ++Failures;
        return;
      }
      {
        FdStreamBuf Buf(Fd);
        std::istream In(&Buf);
        std::ostream Out(&Buf);
        ServiceClient C(In, Out);
        for (int I = 0; I != Iters; ++I)
          if (!C.check(AcceptedSrc).R.Ok)
            ++Failures;
      }
      closeFd(Fd);
    });
  for (std::thread &T : Clients)
    T.join();
  EXPECT_EQ(Failures.load(), 0);

  // The acceptance snapshot rides the same wire as any other op.
  int Fd = connectLoopback(Srv.port());
  ASSERT_GE(Fd, 0);
  {
    FdStreamBuf Buf(Fd);
    std::istream In(&Buf);
    std::ostream Out(&Buf);
    ServiceClient C(In, Out);
    ClientResponse After = C.metrics();
    ASSERT_TRUE(After.R.Ok);
    EXPECT_GT(counterOf(After, "server.coalesced_epochs"), Coalesced0);
    EXPECT_GT(counterOf(After, "dse.memo.verdict_hits"), VerdictHits0);
    EXPECT_GE(counterOf(After, "server.connections_accepted"),
              Accepted0 + NumClients);
  }
  closeFd(Fd);

  Srv.stop();
  Loop.join();
}

TEST(Client, MidStreamEofSurfacesStructuredError) {
  // A server killed mid-exchange used to look like a clean end of stream:
  // the client returned fewer responses than requests and callers
  // misread the silence as success. Pin the hardening: every missing
  // reply must come back as a structured error naming the truncation.
  Request First;
  First.Kind = Op::Check;
  First.Source = AcceptedSrc;
  Request Second = First;

  // The canned server answers request id 1, then dies (EOF) before id 2.
  std::istringstream In(
      R"({"id":1,"op":"check","ok":true,"latency_ms":0.1})" "\n");
  std::ostringstream Out;
  ServiceClient C(In, Out);
  std::vector<ClientResponse> Rs = C.callBatch({First, Second});

  ASSERT_EQ(Rs.size(), 2u);
  EXPECT_TRUE(Rs[0].R.Ok);
  EXPECT_FALSE(Rs[1].R.Ok);
  ASSERT_FALSE(Rs[1].R.Errors.empty());
  EXPECT_EQ(Rs[1].R.Errors[0].kind(), ErrorKind::Internal);
  EXPECT_NE(Rs[1].R.Errors[0].message().find(
                "connection closed before response (1 of 2 replies"),
            std::string::npos)
      << Rs[1].R.Errors[0].message();
}

TEST(TcpServer, HostileSoakKeepsWellBehavedClientsLive) {
  // The tier-1 slice of the nightly hostile-client soak, and the TSan
  // assertion from the fuzz issue: garbage/truncated/oversized frames,
  // half-open connections, floods and slow readers must neither stall
  // nor corrupt a well-behaved client's in-flight batches. The nightly
  // leg runs the same harness via dahlia-fuzz-proto with more rounds.
  if (!haveSockets())
    GTEST_SKIP() << "no sockets on this platform";
  fuzz::ProtoFuzzOptions O;
  O.Rounds = 2;
  fuzz::ProtoFuzzReport R = fuzz::runProtoFuzz(O);
  for (const fuzz::ProtoFailure &F : R.Failures)
    ADD_FAILURE() << "round " << F.Round << " [" << F.Attack << "] "
                  << F.Detail;
  EXPECT_GT(R.Stats.Attacks, 0u);
  EXPECT_GT(R.Stats.HostileConnections, 0u);
  EXPECT_GT(R.Stats.WellBehavedBatches, 0u)
      << "well-behaved clients never completed a batch during the soak";
}

//===----------------------------------------------------------------------===//
// Watch op and observability surfaces
//===----------------------------------------------------------------------===//

TEST(Service, WatchSnapshotsSweepProgress) {
  CompileService Svc(testOptions());
  ServiceClient C(Svc);

  // Before any sweep: the idle snapshot.
  ClientResponse Idle = C.watch();
  ASSERT_TRUE(Idle.R.Ok);
  ASSERT_TRUE(Idle.R.Watch.isObject());
  EXPECT_FALSE(Idle.R.Watch.at("running").asBool(true));
  EXPECT_EQ(Idle.R.Watch.at("phase").asString(), "idle");
  EXPECT_EQ(Idle.R.Watch.at("total").asInt(), 0);

  // After a sweep: the final forced progress tick, no longer running.
  ASSERT_TRUE(C.dseSweep("gemm-blocked", 120, 2).R.Ok);
  ClientResponse Done = C.watch();
  ASSERT_TRUE(Done.R.Ok);
  EXPECT_FALSE(Done.R.Watch.at("running").asBool(true));
  EXPECT_NE(Done.R.Watch.at("phase").asString(), "idle");
  EXPECT_GT(Done.R.Watch.at("total").asInt(), 0);
}

TEST(Service, SlowRequestLogCarriesSweepFields) {
  ServiceOptions O = testOptions();
  O.SlowRequestMs = 1e-6; // Everything is slow: every request logs.
  CompileService Svc(O);
  ServiceClient C(Svc);

  testing::internal::CaptureStderr();
  ASSERT_TRUE(C.dseSweep("gemm-blocked", 120, 2).R.Ok);
  std::string Log = testing::internal::GetCapturedStderr();

  // One structured line per slow request; the sweep line carries the
  // sweep-attribution fields.
  std::istringstream Ls(Log);
  std::string Line;
  std::optional<Json> Sweep;
  while (std::getline(Ls, Line)) {
    std::optional<Json> J = Json::parse(Line);
    if (J && J->isObject() && J->at("op").asString() == "dse-sweep")
      Sweep = *J;
  }
  ASSERT_TRUE(Sweep) << "no dse-sweep slow-request line in: " << Log;
  EXPECT_TRUE(Sweep->at("slow_request").asBool());
  EXPECT_EQ(Sweep->at("space").asString(), "gemm-blocked");
  EXPECT_EQ(Sweep->at("strategy").asString(), "exhaustive");
  EXPECT_EQ(Sweep->at("explored").asInt(), 120);
  EXPECT_TRUE(Sweep->contains("pruned"));
  EXPECT_TRUE(Sweep->contains("latency_ms"));
}

TEST(Client, SkipsUnknownRecordsInStreamTransport) {
  // A record the protocol does not model (no op/ok envelope, no error
  // payload) is skipped with a warning; the real response behind it
  // still lands. Error payloads keep their pinned surfacing behavior.
  {
    std::istringstream In("{\"notice\":\"server gossip\",\"id\":1}\n"
                          "{\"id\":1,\"op\":\"check\",\"ok\":true}\n");
    std::ostringstream Out;
    ServiceClient C(In, Out);
    testing::internal::CaptureStderr();
    ClientResponse R = C.check(AcceptedSrc);
    std::string Warn = testing::internal::GetCapturedStderr();
    EXPECT_TRUE(R.R.Ok);
    EXPECT_TRUE(R.R.Errors.empty());
    EXPECT_NE(Warn.find("skipping unknown record"), std::string::npos)
        << Warn;
    EXPECT_NE(Warn.find("server gossip"), std::string::npos) << Warn;
  }
  {
    // An error payload is consumed as the reply and surfaced verbatim.
    std::istringstream In("{\"message\":\"service melting\"}\n");
    std::ostringstream Out;
    ServiceClient C(In, Out);
    ClientResponse R = C.check(AcceptedSrc);
    EXPECT_FALSE(R.R.Ok);
    ASSERT_FALSE(R.R.Errors.empty());
    EXPECT_NE(R.R.Errors[0].message().find("service melting"),
              std::string::npos);
  }
}

TEST(Client, StrictModeTurnsUnknownRecordsIntoErrors) {
  // The cluster coordinator's decoding mode: what the lenient client
  // warns-and-skips (previous test) must become a structured error — a
  // coordinator merging shard fronts cannot guess around gossip.
  std::istringstream In("{\"notice\":\"server gossip\",\"id\":1}\n"
                        "{\"id\":1,\"op\":\"check\",\"ok\":true}\n");
  std::ostringstream Out;
  ServiceClient C(In, Out);
  C.setStrict(true);
  ClientResponse R = C.check(AcceptedSrc);
  EXPECT_FALSE(R.R.Ok);
  ASSERT_FALSE(R.R.Errors.empty());
  EXPECT_NE(R.R.Errors[0].message().find("unknown record"),
            std::string::npos)
      << R.R.Errors[0].message();
}

TEST(Client, StrictModeRejectsHostileSweepStreams) {
  // Four ways a hostile (or buggy) worker can mangle a streamed sweep
  // without breaking JSON framing. Lenient decoding tolerates the first
  // two for forward compatibility; strict mode must refuse all four with
  // an error naming the violation — never reassemble a wrong sweep.
  const std::string Header =
      R"({"id":1,"op":"dse-sweep","stream":true})" "\n";
  const std::string Point0 =
      R"({"front_point":{"accepted":true,"index":0,"latency":10,"lut":1,"ff":1,"dsp":1,"bram":1},"id":1})"
      "\n";
  const std::string TermFront0 =
      R"({"id":1,"op":"dse-sweep","ok":true,"stream_end":true,"sweep":{"front":[0],"accepted_front":[0],"shard_index":0,"shard_count":1,"explored":1}})"
      "\n";
  const std::string TermFront05 =
      R"({"id":1,"op":"dse-sweep","ok":true,"stream_end":true,"sweep":{"front":[0,5],"accepted_front":[0],"shard_index":0,"shard_count":1,"explored":6}})"
      "\n";

  struct Case {
    const char *Name;
    std::string Wire;
    const char *Expect;
    bool LenientOk;
  } Cases[] = {
      {"duplicate front_point chunk", Header + Point0 + Point0 + TermFront0,
       "duplicate front_point chunk", true},
      {"unknown stream chunk",
       Header + "{\"id\":1,\"chunk\":\"garbage\"}\n" + Point0 + TermFront0,
       "unknown stream chunk", true},
      {"premature stream_end", Header + Point0 + TermFront05,
       "premature stream_end", true},
  };

  for (const Case &TC : Cases) {
    SCOPED_TRACE(TC.Name);
    {
      std::istringstream In(TC.Wire);
      std::ostringstream Out;
      ServiceClient C(In, Out);
      C.setStrict(true);
      Request R;
      R.Kind = Op::DseSweep;
      R.Space = "gemm-blocked";
      R.Stream = true;
      ClientResponse Resp = C.call(std::move(R));
      EXPECT_FALSE(Resp.R.Ok);
      ASSERT_FALSE(Resp.R.Errors.empty());
      EXPECT_NE(Resp.R.Errors[0].message().find(TC.Expect),
                std::string::npos)
          << Resp.R.Errors[0].message();
    }
    {
      // The same wire decoded leniently: skipped, not fatal.
      std::istringstream In(TC.Wire);
      std::ostringstream Out;
      ServiceClient C(In, Out);
      Request R;
      R.Kind = Op::DseSweep;
      R.Space = "gemm-blocked";
      R.Stream = true;
      ClientResponse Resp = C.call(std::move(R));
      EXPECT_EQ(Resp.R.Ok, TC.LenientOk);
    }
  }
}

TEST(Service, CacheExportImportRoundTripMakesColdServiceWarm) {
  // The cluster warm-cache shipping primitive: a fresh service fed
  // another's exported memo cache answers the same sweep entirely from
  // cache. Slice exports ("i/N") must partition the same entries.
  CompileService Warm(testOptions());
  ServiceClient WarmC(Warm);
  ClientResponse First = WarmC.dseSweep("gemm-blocked", 150, 2);
  ASSERT_TRUE(First.R.Ok);
  size_t Explored =
      static_cast<size_t>(First.Raw.at("sweep").at("explored").asInt());
  ASSERT_GT(Explored, 0u);

  ClientResponse Full = WarmC.cacheExport();
  ASSERT_TRUE(Full.R.Ok);
  size_t FullVerdicts = Full.R.Cache.at("verdicts").size();
  size_t FullEstimates = Full.R.Cache.at("estimates").size();
  EXPECT_GE(FullEstimates, Explored);

  // Slices are disjoint and cover: counts add up to the whole export.
  size_t SlicedVerdicts = 0, SlicedEstimates = 0;
  for (const char *Slice : {"0/3", "1/3", "2/3"}) {
    ClientResponse S = WarmC.cacheExport(Slice);
    ASSERT_TRUE(S.R.Ok) << Slice;
    SlicedVerdicts += S.R.Cache.at("verdicts").size();
    SlicedEstimates += S.R.Cache.at("estimates").size();
  }
  EXPECT_EQ(SlicedVerdicts, FullVerdicts);
  EXPECT_EQ(SlicedEstimates, FullEstimates);
  EXPECT_FALSE(WarmC.cacheExport("7/3").R.Ok); // malformed slice
  EXPECT_FALSE(WarmC.cacheExport("nope").R.Ok);

  CompileService Cold(testOptions());
  ServiceClient ColdC(Cold);
  ClientResponse Imported = ColdC.cacheImport(Full.R.Cache);
  ASSERT_TRUE(Imported.R.Ok);
  EXPECT_EQ(static_cast<size_t>(
                Imported.R.Cache.at("imported_estimates").asInt()),
            FullEstimates);

  ClientResponse Second = ColdC.dseSweep("gemm-blocked", 150, 2);
  ASSERT_TRUE(Second.R.Ok);
  const Json &S2 = Second.Raw.at("sweep");
  EXPECT_EQ(S2.at("estimate_cache_hits").asInt(),
            static_cast<int64_t>(Explored));
  EXPECT_EQ(S2.at("front_hash").asString(),
            First.Raw.at("sweep").at("front_hash").asString());

  // Garbage payloads are a structured error, not a poisoned cache.
  Json Bad = Json::object();
  Bad["verdicts"] = "not an array";
  EXPECT_FALSE(ColdC.cacheImport(std::move(Bad)).R.Ok);
}

TEST(TcpServer, WatchStreamsLiveProgressDuringSweep) {
  if (!haveSockets())
    GTEST_SKIP() << "no sockets on this platform";
  CompileService Svc(testOptions());
  TcpServer Srv(Svc);
  std::string Err;
  ASSERT_TRUE(Srv.start(&Err)) << Err;
  std::thread Loop([&] { Srv.run(); });

  // Watcher connection: a bounded stream of 6 records at 200ms. The
  // call blocks until the terminal line, so it runs on its own thread
  // while the main thread drives a sweep through a second connection.
  ClientResponse WatchR;
  std::atomic<bool> WatchOk{false};
  std::thread Watcher([&] {
    int Fd = connectLoopback(Srv.port());
    if (Fd < 0)
      return;
    FdStreamBuf Buf(Fd);
    std::istream In(&Buf);
    std::ostream Out(&Buf);
    ServiceClient C(In, Out);
    WatchR = C.watch(/*Stream=*/true, /*Count=*/6, /*IntervalMs=*/200);
    WatchOk.store(true);
  });

  // Let the watch registration land in an earlier epoch, then run a
  // sweep long enough to span several watch intervals.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  {
    int Fd = connectLoopback(Srv.port());
    ASSERT_GE(Fd, 0);
    FdStreamBuf Buf(Fd);
    std::istream In(&Buf);
    std::ostream Out(&Buf);
    ServiceClient C(In, Out);
    ClientResponse Sweep = C.dseSweep("gemm-blocked", 8000, 2);
    ASSERT_TRUE(Sweep.R.Ok);
    EXPECT_EQ(Sweep.R.Sweep.at("explored").asInt(), 8000);
  }
  Watcher.join();
  Srv.stop();
  Loop.join();

  ASSERT_TRUE(WatchOk.load());
  ASSERT_TRUE(WatchR.R.Ok);
  EXPECT_TRUE(WatchR.Streamed);
  const std::vector<Json> &Recs =
      WatchR.Raw.at("progress_records").asArray();
  ASSERT_EQ(Recs.size(), 6u);
  size_t Live = 0;
  for (const Json &R : Recs) {
    EXPECT_TRUE(R.contains("phase"));
    if (R.at("running").asBool())
      ++Live;
  }
  EXPECT_GE(Live, 2u)
      << "the watcher must observe the sweep in flight, not just idle "
         "heartbeats";
}

} // namespace
